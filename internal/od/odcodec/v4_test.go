package odcodec

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/strdist"
)

// TestMmapModes opens the same snapshot in every access mode and
// asserts the modes only change how bytes are read, never what they
// decode to. MmapOff is the forced-pread path that exercises the
// portable fallback on platforms where the mapping would succeed.
func TestMmapModes(t *testing.T) {
	dir := t.TempDir()
	writeSample(t, dir, "fp-mmap", nil)
	type answer struct {
		object string
		ids    []int32
		values []string
	}
	var answers []answer
	for _, mode := range []MmapMode{MmapAuto, MmapOn, MmapOff} {
		t.Run(mode.String(), func(t *testing.T) {
			r, err := OpenWith(dir, OpenOptions{Mmap: mode})
			if err != nil {
				if mode == MmapOn {
					t.Skipf("mmap unsupported on this platform: %v", err)
				}
				t.Fatal(err)
			}
			defer r.Close()
			if mode == MmapOff && r.MmapActive() {
				t.Fatal("MmapOff still mapped the segments")
			}
			obj, _, _, err := r.OD(1)
			if err != nil {
				t.Fatal(err)
			}
			ids, ok, err := r.LookupValue("ARTIST", "Led Zeppelin")
			if err != nil || !ok {
				t.Fatalf("LookupValue = %v/%v/%v", ids, ok, err)
			}
			var values []string
			err = r.ScanType("ARTIST", func(v string, rl int, p func() ([]int32, error)) (bool, error) {
				values = append(values, v)
				return false, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			answers = append(answers, answer{obj, ids, values})
			if len(answers) > 1 && !reflect.DeepEqual(answers[0], answers[len(answers)-1]) {
				t.Fatalf("mode %v answers differ: %+v vs %+v", mode, answers[0], answers[len(answers)-1])
			}
		})
	}
}

// TestParseMmapMode pins the CLI spelling round-trip.
func TestParseMmapMode(t *testing.T) {
	for _, mode := range []MmapMode{MmapAuto, MmapOn, MmapOff} {
		got, err := ParseMmapMode(mode.String())
		if err != nil || got != mode {
			t.Errorf("ParseMmapMode(%q) = %v/%v", mode.String(), got, err)
		}
	}
	if _, err := ParseMmapMode("mostly"); err == nil {
		t.Error("ParseMmapMode accepted garbage")
	}
}

// neighborValues is a value table whose neighborhood has real collisions
// across its two-edit budget.
var neighborValues = []string{
	"abba", "abbey road", "animals", "anneals", "beatles", "bettles",
	"kind of blue", "kind of glue", "kinds of blue", "led zeppelin",
	"leo zeppelin", "muddy water", "muddy waters", "ok computer",
	"ok computers", "the wail", "the wall", "the whale", "wish you were here",
}

// writeNeighborSnapshot persists one type with the given budget over
// sorted distinct values; posting list i is {i}.
func writeNeighborSnapshot(t testing.TB, dir string, budget int, values []string) {
	t.Helper()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	maxLen := 0
	for _, v := range values {
		if l := len([]rune(v)); l > maxLen {
			maxLen = l
		}
	}
	if err := w.BeginType("T", maxLen, budget); err != nil {
		t.Fatal(err)
	}
	for i, v := range values {
		if err := w.AddValue(v, []int32{int32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(Meta{Theta: 0.3}); err != nil {
		t.Fatal(err)
	}
}

// TestNeighborLookupMatchesInMemoryIndex pins the persisted neighbor
// segment to strdist.NeighborIndex: for every value as a query, the
// disk candidates (query variants -> buckets, verified) must equal the
// in-memory index's verified lookup, in both access modes and for every
// indexable budget.
func TestNeighborLookupMatchesInMemoryIndex(t *testing.T) {
	for _, budget := range []int{0, 1, 2} {
		for _, mode := range []MmapMode{MmapAuto, MmapOff} {
			t.Run(fmt.Sprintf("budget=%d/mmap=%s", budget, mode), func(t *testing.T) {
				dir := t.TempDir()
				writeNeighborSnapshot(t, dir, budget, neighborValues)
				r, err := OpenWith(dir, OpenOptions{Mmap: mode})
				if err != nil {
					t.Fatal(err)
				}
				defer r.Close()
				if !r.HasNeighbors("T") {
					t.Fatal("HasNeighbors = false for an indexable budget")
				}
				mem := strdist.NewNeighborIndex(neighborValues, budget)
				for _, q := range append([]string{"zzz", "kind of", ""}, neighborValues...) {
					got := diskNeighborLookup(t, r, q, budget)
					want := append([]int32(nil), mem.Lookup(q, -1)...)
					sortInt32sTest(want)
					if !reflect.DeepEqual(got, want) {
						t.Errorf("q=%q: disk %v, mem %v", q, got, want)
					}
				}
			})
		}
	}
}

// diskNeighborLookup mirrors the DiskStore fast path: probe every query
// variant, dedupe ordinals, verify with the banded edit distance.
func diskNeighborLookup(t testing.TB, r *Reader, q string, budget int) []int32 {
	t.Helper()
	seen := map[int32]bool{}
	var out []int32
	for _, variant := range strdist.DeletionVariants(q, budget) {
		ords, err := r.NeighborLookup("T", variant)
		if err != nil {
			t.Fatal(err)
		}
		for _, ord := range ords {
			if seen[ord] {
				continue
			}
			seen[ord] = true
			v, _, _, err := r.ValueAt("T", ord)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := strdist.LevenshteinBounded(q, v, budget); ok {
				out = append(out, ord)
			}
		}
	}
	sortInt32sTest(out)
	return out
}

func sortInt32sTest(ids []int32) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// TestNeighborAbsentForUnindexableBudget: budgets outside 0..2 persist
// no buckets (matching MemStore, which builds no neighbor index there),
// but the segment still opens and reports the type unindexed.
func TestNeighborAbsentForUnindexableBudget(t *testing.T) {
	for _, budget := range []int{-1, 3} {
		dir := t.TempDir()
		writeNeighborSnapshot(t, dir, budget, []string{"aa", "bb"})
		r, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if r.HasNeighbors("T") {
			t.Errorf("budget %d: HasNeighbors = true", budget)
		}
		if ords, err := r.NeighborLookup("T", "aa"); err != nil || ords != nil {
			t.Errorf("budget %d: NeighborLookup = %v/%v", budget, ords, err)
		}
		r.Close()
	}
}

// TestValueAt pins ordinal random access across sparse-block boundaries
// (>64 values forces multiple blocks) in both access modes.
func TestValueAt(t *testing.T) {
	values := make([]string, 150)
	for i := range values {
		values[i] = fmt.Sprintf("value-%04d", i)
	}
	dir := t.TempDir()
	writeNeighborSnapshot(t, dir, 1, values)
	for _, mode := range []MmapMode{MmapAuto, MmapOff} {
		r, err := OpenWith(dir, OpenOptions{Mmap: mode})
		if err != nil {
			t.Fatal(err)
		}
		for _, ord := range []int32{0, 1, 63, 64, 65, 127, 128, 149} {
			v, rl, ids, err := r.ValueAt("T", ord)
			if err != nil {
				t.Fatal(err)
			}
			if v != values[ord] || rl != len([]rune(v)) || !reflect.DeepEqual(ids, []int32{ord}) {
				t.Errorf("mode %v ValueAt(%d) = %q/%d/%v", mode, ord, v, rl, ids)
			}
		}
		if _, _, _, err := r.ValueAt("T", 150); err == nil {
			t.Error("ValueAt accepted an out-of-range ordinal")
		}
		if _, _, _, err := r.ValueAt("missing", 0); err == nil {
			t.Error("ValueAt accepted an unknown type")
		}
		r.Close()
	}
}

// TestNeighborCorruptionRejected byte-flips the neighbor segment like
// the other segments' corruption suite.
func TestNeighborCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	writeNeighborSnapshot(t, dir, 2, neighborValues)
	path := filepath.Join(dir, NeighborFile)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{0, 4, 5, headerSize, headerSize + 3, len(orig) / 2, len(orig) - 6, len(orig) - 1} {
		if off < 0 || off >= len(orig) {
			continue
		}
		mut := append([]byte(nil), orig...)
		mut[off] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if r, err := Open(dir); err == nil {
			r.Close()
			t.Errorf("flip at %d not detected", off)
		} else if !IsCorrupt(err) {
			t.Errorf("flip at %d: err = %v, want corruption", off, err)
		}
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !IsCorrupt(err) {
		t.Fatalf("missing neighbor segment: err = %v, want corruption", err)
	}
}

// TestV3SnapshotReadable: the previous on-disk version still opens —
// scan-only, no neighbor segment on disk or in the reader — and decodes
// the same content.
func TestV3SnapshotReadable(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriterVersion(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range sampleODs() {
		if err := w.AddOD(o.object, o.source, o.tuples); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.BeginType("ARTIST", 12, 2); err != nil {
		t.Fatal(err)
	}
	if err := w.AddValue("Led Zeppelin", []int32{0, 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(Meta{Theta: 0.15}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, NeighborFile)); !os.IsNotExist(err) {
		t.Fatalf("version-3 writer left a neighbor segment (err=%v)", err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Version() != 3 {
		t.Fatalf("Version() = %d, want 3", r.Version())
	}
	if r.HasNeighbors("ARTIST") {
		t.Fatal("version-3 snapshot reports a neighbor index")
	}
	obj, src, tuples, err := r.OD(0)
	if err != nil || obj != "/db/cd[1]" || src != 0 || len(tuples) != 2 {
		t.Fatalf("OD(0) = %q/%d/%v/%v", obj, src, tuples, err)
	}
	ids, ok, err := r.LookupValue("ARTIST", "Led Zeppelin")
	if err != nil || !ok || !reflect.DeepEqual(ids, []int32{0, 2}) {
		t.Fatalf("LookupValue = %v/%v/%v", ids, ok, err)
	}
}

// TestFutureVersionRejected: a manifest stamped with a version this
// binary does not know is refused with a version message, never
// misdecoded — the same check an old binary applies to snapshots this
// one writes.
func TestFutureVersionRejected(t *testing.T) {
	dir := t.TempDir()
	h := newHeader(kindManifest, Version+1)
	payload := []byte("future payload")
	crc := crc32.Update(0, crcTable, h)
	crc = crc32.Update(crc, crcTable, payload)
	out := append(h, payload...)
	out = append(out, newFooter(crc)...)
	if err := os.WriteFile(filepath.Join(dir, ManifestFile), out, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir)
	if !IsCorrupt(err) || !strings.Contains(err.Error(), "unsupported format version") {
		t.Fatalf("err = %v, want unsupported-version corruption", err)
	}
}

// TestWriterVersionValidated: the writer refuses versions outside the
// readable window, so a snapshot this binary cannot reopen is never
// produced.
func TestWriterVersionValidated(t *testing.T) {
	for _, v := range []int{0, MinReadVersion - 1, Version + 1} {
		if _, err := NewWriterVersion(t.TempDir(), v); err == nil {
			t.Errorf("NewWriterVersion(%d) accepted", v)
		}
	}
}

// TestV4SegmentsSmallerThanV3 pins the structure-sharing win: the same
// repetitive corpus written at both versions must occupy fewer
// string/OD/index bytes at version 4 (value bytes live once in the
// shared heap instead of twice in the string table and the index
// segment).
func TestV4SegmentsSmallerThanV3(t *testing.T) {
	write := func(dir string, version int) {
		w, err := NewWriterVersion(dir, version)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			artist := fmt.Sprintf("the quite verbose artist ensemble %03d", i%50)
			title := fmt.Sprintf("a rather long common record title %03d", i)
			err := w.AddOD(fmt.Sprintf("/db/cd[%d]", i), 0, []Tuple{
				{Value: artist, Name: "/db/cd/artist", Type: "ARTIST"},
				{Value: title, Name: "/db/cd/title", Type: "TITLE"},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		values := map[string][]int32{}
		for i := 0; i < 200; i++ {
			v := fmt.Sprintf("the quite verbose artist ensemble %03d", i%50)
			values[v] = append(values[v], int32(i))
		}
		sorted := make([]string, 0, len(values))
		for v := range values {
			sorted = append(sorted, v)
		}
		sort.Strings(sorted)
		if err := w.BeginType("ARTIST", 40, 2); err != nil {
			t.Fatal(err)
		}
		for _, v := range sorted {
			if err := w.AddValue(v, values[v]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Commit(Meta{Theta: 0.15}); err != nil {
			t.Fatal(err)
		}
	}
	segBytes := func(dir string) int64 {
		var total int64
		for _, name := range []string{StringsFile, ODsFile, IndexFile} {
			st, err := os.Stat(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			total += st.Size()
		}
		return total
	}
	dir3, dir4 := t.TempDir(), t.TempDir()
	write(dir3, 3)
	write(dir4, 4)
	b3, b4 := segBytes(dir3), segBytes(dir4)
	if b4 >= b3 {
		t.Fatalf("version-4 string/OD/index bytes %d not smaller than version-3 %d", b4, b3)
	}
	t.Logf("v3=%d bytes, v4=%d bytes (%.0f%%)", b3, b4, 100*float64(b4)/float64(b3))
}

// FuzzNeighborIndexRoundTrip feeds arbitrary value tables and queries
// through the persisted neighbor segment and checks the verified
// candidate set against the in-memory strdist.NeighborIndex over the
// same values — the equivalence the DiskStore fast path rests on.
func FuzzNeighborIndexRoundTrip(f *testing.F) {
	f.Add("abc\nabd\nxyz", "abe", 1)
	f.Add("a\nb\nab\nba", "aa", 2)
	f.Add("kind of blue\nkind of glue", "kind of blue", 2)
	f.Fuzz(func(t *testing.T, raw, query string, budget int) {
		budget = ((budget % 3) + 3) % 3
		set := map[string]bool{}
		for _, v := range strings.Split(raw, "\n") {
			if v != "" && len(v) <= 64 {
				set[v] = true
			}
		}
		if len(set) == 0 || len(set) > 32 || len(query) > 64 {
			t.Skip()
		}
		values := make([]string, 0, len(set))
		for v := range set {
			values = append(values, v)
		}
		sort.Strings(values)
		dir := t.TempDir()
		writeNeighborSnapshot(t, dir, budget, values)
		r, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		got := diskNeighborLookup(t, r, query, budget)
		mem := strdist.NewNeighborIndex(values, budget)
		want := append([]int32(nil), mem.Lookup(query, -1)...)
		sortInt32sTest(want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("values=%q q=%q budget=%d: disk %v, mem %v", values, query, budget, got, want)
		}
	})
}

// FuzzCompressedSegment round-trips arbitrary strings through the
// shared heap's interning (exact dedup, substring sharing, tail
// extension) and asserts every OD decodes back bit-identically.
func FuzzCompressedSegment(f *testing.F) {
	f.Add("abc\nabcdef\ncdef\nabc")
	f.Add("\nx\nxx\nxxx\nxx")
	f.Add("prefix shared\nprefix\nshared")
	f.Fuzz(func(t *testing.T, raw string) {
		parts := strings.Split(raw, "\n")
		if len(parts) > 64 {
			t.Skip()
		}
		for _, p := range parts {
			if len(p) > 256 {
				t.Skip()
			}
		}
		dir := t.TempDir()
		w, err := NewWriter(dir)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range parts {
			err := w.AddOD(fmt.Sprintf("/o[%d]", i), 0, []Tuple{
				{Value: p, Name: p + "n", Type: "T"},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Commit(Meta{Theta: 0.15}); err != nil {
			t.Fatal(err)
		}
		for _, mode := range []MmapMode{MmapAuto, MmapOff} {
			r, err := OpenWith(dir, OpenOptions{Mmap: mode})
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range parts {
				obj, _, tuples, err := r.OD(int32(i))
				if err != nil {
					t.Fatal(err)
				}
				if obj != fmt.Sprintf("/o[%d]", i) || len(tuples) != 1 ||
					tuples[0].Value != p || tuples[0].Name != p+"n" || tuples[0].Type != "T" {
					t.Fatalf("mode %v OD(%d) = %q/%v, want value %q", mode, i, obj, tuples, p)
				}
			}
			r.Close()
		}
	})
}
