package od

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/od/odcodec"
)

// mutableBackends builds one instance of every MutableStore backend over
// copies of the initial ODs, finalized at theta — the three single-node
// stores plus a three-member federation over heterogeneous backends, so
// every mutable-store gate also holds the distributed layer to the
// fresh-build reference.
func mutableBackends(t *testing.T, initial []*OD, theta float64) map[string]MutableStore {
	t.Helper()
	disk := NewDiskStore(t.TempDir())
	sharded := NewShardedStore(4)
	parts := make([]Partition, 3)
	for i, b := range mixedBackends(t, 3) {
		parts[i] = LocalPartition{S: b}
	}
	out := map[string]MutableStore{
		"mem": NewMemStore(), "sharded": sharded, "disk": disk,
		"dist": NewPartitionedStore(parts, 0),
	}
	for _, s := range out {
		for _, o := range initial {
			cp := *o
			s.Add(&cp)
		}
		s.Finalize(theta)
	}
	return out
}

// copyODs deep-copies OD headers so each backend owns its IDs.
func copyODs(ods []*OD) []*OD {
	out := make([]*OD, len(ods))
	for i, o := range ods {
		cp := *o
		out[i] = &cp
	}
	return out
}

// freshOver builds the reference answer: a MemStore freshly built over
// the live subsequence of the mutated ID space.
func freshOver(live []*OD, theta float64) *MemStore {
	fresh := NewMemStore()
	for _, o := range live {
		cp := *o
		fresh.Add(&cp)
	}
	fresh.Finalize(theta)
	return fresh
}

// mutationScript applies the shared add/remove/re-add sequence and
// returns the live ODs in ID order (content identity, original IDs).
func mutationScript(t *testing.T, s MutableStore, batch2, batch3 []*OD, remove []int32) {
	t.Helper()
	if err := s.AddAfterFinalize(copyODs(batch2)); err != nil {
		t.Fatalf("AddAfterFinalize batch2: %v", err)
	}
	if err := s.Remove(remove); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := s.AddAfterFinalize(copyODs(batch3)); err != nil {
		t.Fatalf("AddAfterFinalize batch3: %v", err)
	}
}

// assertStoreMatchesFresh compares every Store query of the mutated
// store against the fresh reference, remapping IDs through the live
// subsequence (live old ID k-th in ascending order <=> fresh ID k).
func assertStoreMatchesFresh(t *testing.T, name string, mut MutableStore, fresh *MemStore) {
	t.Helper()
	span := mut.IDSpan()
	remap := map[int32]int32{}
	next := int32(0)
	for id := int32(0); id < span; id++ {
		if mut.Alive(id) {
			remap[id] = next
			next++
		}
	}
	if got, want := mut.Size(), fresh.Size(); got != want {
		t.Fatalf("%s: Size=%d, fresh=%d", name, got, want)
	}
	if int(next) != fresh.Size() {
		t.Fatalf("%s: %d live ids, fresh has %d", name, next, fresh.Size())
	}
	remapIDs := func(ids []int32) []int32 {
		out := make([]int32, len(ids))
		for i, id := range ids {
			m, ok := remap[id]
			if !ok {
				t.Fatalf("%s: posting references dead id %d", name, id)
			}
			out[i] = m
		}
		return out
	}
	remapMatches := func(ms []ValueMatch) []ValueMatch {
		out := make([]ValueMatch, len(ms))
		for i, m := range ms {
			out[i] = ValueMatch{Value: m.Value, Objects: remapIDs(m.Objects), Dist: m.Dist}
		}
		return out
	}

	for id := int32(0); id < span; id++ {
		if !mut.Alive(id) {
			if o := mut.OD(id); o != nil {
				t.Fatalf("%s: OD(%d) non-nil for removed id", name, id)
			}
			continue
		}
		o := mut.OD(id)
		fo := fresh.OD(remap[id])
		if o.Object != fo.Object || !reflect.DeepEqual(o.Tuples, fo.Tuples) {
			t.Fatalf("%s: OD(%d) mismatch vs fresh OD(%d)", name, id, remap[id])
		}
		for _, tu := range o.NonEmptyTuples() {
			if got, want := remapIDs(mut.ObjectsWithExact(tu)), fresh.ObjectsWithExact(tu); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: ObjectsWithExact(%v)=%v, fresh=%v", name, tu, got, want)
			}
			if got, want := remapMatches(mut.SimilarValues(tu)), fresh.SimilarValues(tu); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: SimilarValues(%v)=%v, fresh=%v", name, tu, got, want)
			}
			if got, want := mut.SoftIDFSingle(tu), fresh.SoftIDFSingle(tu); got != want {
				t.Fatalf("%s: SoftIDFSingle(%v)=%v, fresh=%v", name, tu, got, want)
			}
		}
		if got, want := remapIDs(mut.Neighbors(id)), fresh.Neighbors(remap[id]); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: Neighbors(%d)=%v, fresh(%d)=%v", name, id, got, remap[id], want)
		}
	}

	gotStats, wantStats := mut.Stats(), fresh.Stats()
	for i := range gotStats {
		gotStats[i].Indexed = false
	}
	for i := range wantStats {
		wantStats[i].Indexed = false
	}
	if !reflect.DeepEqual(gotStats, wantStats) {
		t.Fatalf("%s: Stats()=%v, fresh=%v", name, gotStats, wantStats)
	}
}

// mutableFixture builds the shared scenario: an initial CD corpus, an
// added batch, removals spanning initial and added IDs (killing some
// values outright), and a re-adding batch that restores a removed disc's
// values verbatim.
func mutableFixture() (initial, batch2, batch3 []*OD, remove []int32, liveOf func(MutableStore) []*OD) {
	initial = cdODs(40, 99)
	batch2 = cdODs(12, 77)
	for _, o := range batch2 {
		o.Object = "/update1" + o.Object
	}
	// Remove two initial discs (ids 3, 17) and two added ones (ids 40+2,
	// 40+5). Disc 17's values die entirely unless another disc shares
	// them; batch3 re-adds disc 3's exact OD under a new path.
	remove = []int32{3, 17, 42, 45}
	readd := *initial[3]
	readd.Object = "/update2/readd"
	batch3 = append([]*OD{&readd}, cdODs(8, 55)...)
	for _, o := range batch3[1:] {
		o.Object = "/update2" + o.Object
	}
	liveOf = func(s MutableStore) []*OD {
		var out []*OD
		for id := int32(0); id < s.IDSpan(); id++ {
			if s.Alive(id) {
				out = append(out, s.OD(id))
			}
		}
		return out
	}
	return initial, batch2, batch3, remove, liveOf
}

// TestMutableStoreParity is the incremental-maintenance gate: after an
// add/remove/re-add script, every backend must answer all queries
// exactly as a fresh build over the surviving objects would, IDs
// remapped through the live subsequence.
func TestMutableStoreParity(t *testing.T) {
	initial, batch2, batch3, remove, liveOf := mutableFixture()
	const theta = 0.15
	for name, s := range mutableBackends(t, initial, theta) {
		mutationScript(t, s, batch2, batch3, remove)
		fresh := freshOver(liveOf(s), theta)
		assertStoreMatchesFresh(t, name, s, fresh)
	}
}

// TestMutableStoreCompaction drives enough churn through a small store
// to cross the compaction threshold, so the scoped-rebuild path (not
// just the overlay path) is exercised against the fresh reference.
func TestMutableStoreCompaction(t *testing.T) {
	old := compactMin
	compactMin = 4
	defer func() { compactMin = old }()

	initial, _, _, _, liveOf := mutableFixture()
	const theta = 0.15
	for name, s := range mutableBackends(t, initial, theta) {
		// Rolling churn: repeatedly remove the oldest live disc and add a
		// new one, far past the lowered threshold.
		seed := int64(1000)
		for round := 0; round < 12; round++ {
			oldest := int32(-1)
			for id := int32(0); id < s.IDSpan(); id++ {
				if s.Alive(id) {
					oldest = id
					break
				}
			}
			if err := s.Remove([]int32{oldest}); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			batch := cdODs(2, seed)
			for i, o := range batch {
				o.Object = fmt.Sprintf("/churn%d/disc[%d]", round, i+1)
			}
			seed++
			if err := s.AddAfterFinalize(copyODs(batch)); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		fresh := freshOver(liveOf(s), theta)
		assertStoreMatchesFresh(t, name, s, fresh)
	}
}

// TestMutableRemoveValidation pins the atomic-batch contract: a bad id
// anywhere in the batch leaves the store untouched.
func TestMutableRemoveValidation(t *testing.T) {
	initial, _, _, _, _ := mutableFixture()
	for name, s := range mutableBackends(t, initial, 0.15) {
		before := s.Size()
		if err := s.Remove([]int32{1, 9999}); err == nil {
			t.Fatalf("%s: out-of-range Remove succeeded", name)
		}
		if err := s.Remove([]int32{2, 2}); err == nil {
			t.Fatalf("%s: duplicate Remove succeeded", name)
		}
		if err := s.Remove([]int32{1}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Remove([]int32{1}); err == nil {
			t.Fatalf("%s: double Remove of same id succeeded", name)
		}
		if got := s.Size(); got != before-1 {
			t.Fatalf("%s: Size=%d after one removal of %d", name, got, before)
		}
	}
}

// TestDiskStoreDeltaReopen pins the restart path: a mutated DiskStore's
// delta segments replay on OpenDiskStore, reproducing the exact mutated
// state without a merge.
func TestDiskStoreDeltaReopen(t *testing.T) {
	initial, batch2, batch3, remove, liveOf := mutableFixture()
	const theta = 0.15
	dir := t.TempDir()
	s := NewDiskStore(dir)
	for _, o := range copyODs(initial) {
		s.Add(o)
	}
	s.Finalize(theta)
	mutationScript(t, s, batch2, batch3, remove)
	fresh := freshOver(liveOf(s), theta)
	s.Close()

	re, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	assertStoreMatchesFresh(t, "reopened", re, fresh)
}

// TestDiskStoreMergeOnSave pins the merge path: Save folds the overlay
// into fresh base segments in place (advanced watermark, deltas
// deleted, removed slots tombstoned so the ID space survives), the
// in-process store keeps answering identically, and the merged
// snapshot reopens to the exact same state.
func TestDiskStoreMergeOnSave(t *testing.T) {
	initial, batch2, batch3, remove, liveOf := mutableFixture()
	const theta = 0.15
	dir := t.TempDir()
	s := NewDiskStore(dir)
	for _, o := range copyODs(initial) {
		s.Add(o)
	}
	s.Finalize(theta)
	mutationScript(t, s, batch2, batch3, remove)
	live := liveOf(s)
	fresh := freshOver(live, theta)

	if err := Save(dir, s, SnapshotMeta{Fingerprint: "merged"}); err != nil {
		t.Fatal(err)
	}

	files, err := filepath.Glob(filepath.Join(dir, "delta-*.odx"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Fatalf("delta files survived the merge: %v", files)
	}

	// The in-process store re-pointed itself at the merged base: same
	// IDs, same answers, no longer diverged from its manifest.
	if s.Mutated() {
		t.Fatal("store still reports Mutated() after its overlay was merged")
	}
	assertStoreMatchesFresh(t, "merged-inprocess", s, fresh)
	s.Close()

	re, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Fingerprint() != "merged" {
		t.Fatalf("fingerprint %q after merge", re.Fingerprint())
	}
	if re.Mutated() {
		t.Fatal("reopened merged snapshot reports Mutated()")
	}
	if got, want := re.Size(), len(live); got != want {
		t.Fatalf("merged size %d, want %d", got, want)
	}
	// The merged snapshot preserves the mutated ID space (holes and
	// all), so the live-subsequence remap matches it to the reference.
	assertStoreMatchesFresh(t, "merged", re, fresh)
}

// TestDiskStoreSaveThenContinueUpdating pins that an in-place merge
// leaves the store usable: mutations continue against the merged base
// with the same ID space, reopen replays the post-merge deltas, and a
// second merge chains cleanly.
func TestDiskStoreSaveThenContinueUpdating(t *testing.T) {
	initial, batch2, batch3, remove, liveOf := mutableFixture()
	const theta = 0.15
	dir := t.TempDir()
	s := NewDiskStore(dir)
	for _, o := range copyODs(initial) {
		s.Add(o)
	}
	s.Finalize(theta)
	if err := s.AddAfterFinalize(copyODs(batch2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(remove); err != nil {
		t.Fatal(err)
	}
	if err := Save(dir, s, SnapshotMeta{Fingerprint: "merge-1"}); err != nil {
		t.Fatal(err)
	}

	// Keep updating the merged store: new adds and a removal of a
	// pre-merge survivor (exercising removal of a base ID whose slot
	// the merge preserved).
	if err := s.AddAfterFinalize(copyODs(batch3)); err != nil {
		t.Fatalf("AddAfterFinalize after merge: %v", err)
	}
	if err := s.Remove([]int32{0}); err != nil {
		t.Fatalf("Remove after merge: %v", err)
	}
	if !s.Mutated() {
		t.Fatal("post-merge mutations not reflected in Mutated()")
	}
	fresh := freshOver(liveOf(s), theta)
	assertStoreMatchesFresh(t, "continued", s, fresh)
	s.Close()

	// Reopen: the tombstoned base plus the post-merge delta segments
	// reproduce the continued state.
	re, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertStoreMatchesFresh(t, "continued-reopen", re, fresh)

	// A second merge chains: deltas fold again, state is unchanged.
	if err := Save(dir, re, SnapshotMeta{Fingerprint: "merge-2"}); err != nil {
		t.Fatal(err)
	}
	assertStoreMatchesFresh(t, "merged-twice", re, fresh)
	re.Close()
	re2, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.Fingerprint() != "merge-2" {
		t.Fatalf("fingerprint %q after second merge", re2.Fingerprint())
	}
	assertStoreMatchesFresh(t, "merged-twice-reopen", re2, fresh)
}

// TestDiskStoreDeltaCorruption pins the integrity story: a bit-flipped
// delta file and a sequence gap are both rejected at open.
func TestDiskStoreDeltaCorruption(t *testing.T) {
	initial, batch2, _, _, _ := mutableFixture()
	const theta = 0.15

	build := func(t *testing.T) string {
		dir := t.TempDir()
		s := NewDiskStore(dir)
		for _, o := range copyODs(initial) {
			s.Add(o)
		}
		s.Finalize(theta)
		if err := s.AddAfterFinalize(copyODs(batch2[:4])); err != nil {
			t.Fatal(err)
		}
		if err := s.Remove([]int32{1}); err != nil {
			t.Fatal(err)
		}
		s.Close()
		return dir
	}

	t.Run("bitflip", func(t *testing.T) {
		dir := build(t)
		path := filepath.Join(dir, odcodec.DeltaFile(1))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenDiskStore(dir); !odcodec.IsCorrupt(err) {
			t.Fatalf("corrupt delta opened: err=%v", err)
		}
	})

	t.Run("gap", func(t *testing.T) {
		dir := build(t)
		if err := os.Remove(filepath.Join(dir, odcodec.DeltaFile(1))); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenDiskStore(dir); !odcodec.IsCorrupt(err) {
			t.Fatalf("delta gap opened: err=%v", err)
		}
	})
}

// TestMutableSaveRoundTrips pins that a mutated MemStore/ShardedStore
// exports a compact snapshot a DiskStore serves with the same answers as
// the fresh reference.
func TestMutableSaveRoundTrips(t *testing.T) {
	initial, batch2, batch3, remove, liveOf := mutableFixture()
	const theta = 0.15
	for name, s := range mutableBackends(t, initial, theta) {
		if name == "disk" || name == "dist" {
			// disk is covered by TestDiskStoreMergeOnSave; the federation
			// persists through SavePartitioned (its own round-trip suite).
			continue
		}
		mutationScript(t, s, batch2, batch3, remove)
		fresh := freshOver(liveOf(s), theta)
		dir := t.TempDir()
		if err := Save(dir, s, SnapshotMeta{Fingerprint: "fp"}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		re, err := OpenDiskStore(dir)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertStoreMatchesFresh(t, name+"-snapshot", re, fresh)
		re.Close()
	}
}

// TestSimilarValuesArbitraryLongQuery pins the neighbor-index coverage
// guard: a query longer than every indexed value (so its feasible edit
// count exceeds the deletion-neighborhood budget) must still find all
// matches via the scan fallback, on every backend.
func TestSimilarValuesArbitraryLongQuery(t *testing.T) {
	ods := []*OD{
		{Object: "/a", Tuples: []Tuple{{Value: "abcdefghij", Name: "/n", Type: "T"}}},
		{Object: "/b", Tuples: []Tuple{{Value: "abcdefghijkl", Name: "/n", Type: "T"}}},
	}
	// θ=0.3 over maxLen 12 gives budget 3 (neighbor-indexed); the query
	// below is 14 runes, so a match may need 4 edits (4/14 < 0.3) —
	// beyond the deletion neighborhood's reach.
	const theta = 0.3
	for name, s := range mutableBackends(t, ods, theta) {
		q := Tuple{Value: "abcdefghijklmn", Type: "T"}
		got := s.SimilarValues(q)
		var vals []string
		for _, m := range got {
			vals = append(vals, m.Value)
		}
		sort.Strings(vals)
		want := []string{"abcdefghij", "abcdefghijkl"}
		if !reflect.DeepEqual(vals, want) {
			t.Fatalf("%s: long query found %v, want %v", name, vals, want)
		}
	}
}

// TestMutableStatsExactBudgetAfterLongestValueRemoval pins the
// diagnostics contract on the nastiest budget path: remove the OD
// holding a type's longest value, churn the type through compaction,
// and require Stats (MaxLen and EditBudget included) to match a fresh
// build over the live set on every backend. The sharded store's
// internal budgets stay grow-only, so this exercises its exact
// re-derivation in Stats.
func TestMutableStatsExactBudgetAfterLongestValueRemoval(t *testing.T) {
	old := compactMin
	compactMin = 2
	defer func() { compactMin = old }()

	mk := func(obj, val string) *OD {
		return &OD{Object: obj, Tuples: []Tuple{{Value: val, Name: "/db/rec/v", Type: "V"}}}
	}
	initial := []*OD{
		mk("/db/rec[1]", "short"),
		mk("/db/rec[2]", "medium-value"),
		mk("/db/rec[3]", "the-single-longest-value-of-the-type"),
	}
	const theta = 0.15
	for name, s := range mutableBackends(t, initial, theta) {
		if err := s.Remove([]int32{2}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Churn past the lowered threshold so every backend compacts.
		if err := s.AddAfterFinalize(copyODs([]*OD{mk("/db/rec[4]", "tiny"), mk("/db/rec[5]", "small")})); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Remove([]int32{0}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.AddAfterFinalize(copyODs([]*OD{mk("/db/rec[6]", "petite")})); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var live []*OD
		for id := int32(0); id < s.IDSpan(); id++ {
			if s.Alive(id) {
				live = append(live, s.OD(id))
			}
		}
		fresh := freshOver(live, theta)
		got, want := s.Stats(), fresh.Stats()
		for i := range got {
			got[i].Indexed = false
		}
		for i := range want {
			want[i].Indexed = false
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: Stats()=%v, fresh=%v", name, got, want)
		}
	}
}
