package od

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/od/odcodec"
	"repro/internal/strdist"
)

// DiskStore is the disk-resident Store backend: Finalize runs the same
// shared index builder as the in-memory backends, then streams the
// object descriptions and per-type value tables into odcodec segment
// files and serves every query from those files. After Finalize (or
// OpenDiskStore) the retained heap is bounded by the index directory
// and the fixed-capacity caches — not by corpus size — and the segment
// directory survives process restarts.
//
// Queries are answered with the same canonical results as MemStore:
// similar-value scans re-verify θtuple with the exact same normalized
// edit-distance checks, posting lists are stored sorted, and merged
// outputs use the shared canonical orderings. The internal/od and
// internal/core parity suites pin this bit-for-bit.
//
// Trade-off versus the in-memory backends: every uncached similar-value
// query scans the type's value segment from disk (no deletion-
// neighborhood index), so a cold DiskStore is the slowest backend per
// query; and Finalize still materializes the tables while building, so
// the build peak matches MemStore's — it is the post-build footprint
// and the OpenDiskStore path that are bounded. Pick this backend when
// indexes must outlive the process (warm starts), when the *retained*
// indexes of a long-lived server must not scale with corpus size, or
// as the serialization substrate for shipping indexes between
// processes.
type DiskStore struct {
	dir string

	// Build phase.
	ods       []*OD
	finalized bool

	// Query phase.
	r       *odcodec.Reader
	theta   float64
	size    int
	stats   []TypeStats
	budgets map[string]int

	odCache  *shardedLRU[int32, *OD]
	occCache *shardedLRU[string, []int32]
	simCache *shardedLRU[string, []ValueMatch]

	allMu  sync.Mutex
	allODs []*OD // materialized by ODs() on demand
}

// Cache capacities. Entries are recomputable, so these only bound the
// retained heap and the disk-read amplification; they are generous
// enough that the hot working set of the compare stage (the values of
// the objects in flight) stays resident.
const (
	diskODCacheSize  = 8192
	diskOccCacheSize = 16384
	diskSimCacheSize = 16384
)

var _ Store = (*DiskStore)(nil)

// NewDiskStore returns an empty disk store that will write its segment
// files into dir at Finalize, replacing any previous snapshot there.
func NewDiskStore(dir string) *DiskStore {
	return &DiskStore{dir: dir}
}

// OpenDiskStore opens the snapshot previously written to dir and
// returns a store that starts life finalized: Add and Finalize panic,
// every query serves from the segment files. The snapshot is fully
// checksum-verified before the first query; corrupt or missing
// snapshots are rejected (odcodec.ErrNoSnapshot, *odcodec.CorruptError).
func OpenDiskStore(dir string) (*DiskStore, error) {
	r, err := odcodec.Open(dir)
	if err != nil {
		return nil, err
	}
	s := &DiskStore{dir: dir, finalized: true}
	s.serveFrom(r)
	return s, nil
}

// Dir returns the snapshot directory.
func (s *DiskStore) Dir() string { return s.dir }

// Fingerprint returns the corpus fingerprint stamped on the snapshot,
// or "" for a store finalized in-process and not yet stamped.
func (s *DiskStore) Fingerprint() string {
	s.mustBeFinal()
	return s.r.Meta().Fingerprint
}

// PersistedFilterValues returns the Step 4 filter bounds persisted with
// the snapshot, or nil. Index-aligned with OD ids.
func (s *DiskStore) PersistedFilterValues() []float64 {
	s.mustBeFinal()
	return s.r.Meta().FilterValues
}

// Add implements Store.
func (s *DiskStore) Add(o *OD) *OD {
	if s.finalized {
		panic("od: Add after Finalize")
	}
	o.ID = int32(len(s.ods))
	s.ods = append(s.ods, o)
	return o
}

// Size implements Store.
func (s *DiskStore) Size() int {
	if s.finalized {
		return s.size
	}
	return len(s.ods)
}

// Theta implements Store.
func (s *DiskStore) Theta() float64 { return s.theta }

// Finalize implements Store: it builds the indexes with the shared
// builder, writes the snapshot, drops the in-memory OD set and switches
// to serving from disk. The Store interface allows no error return, so
// an I/O failure while persisting panics with the underlying error —
// a half-written snapshot is never committed (the manifest is written
// last) and never served.
func (s *DiskStore) Finalize(theta float64) {
	if s.finalized {
		panic("od: Finalize called twice")
	}
	s.finalized = true

	occ := buildOccurrence(s.ods)
	valueObjs := groupValuesByType(occ)
	maxLens := maxValueLens(valueObjs)

	w, err := odcodec.NewWriter(s.dir)
	if err != nil {
		panic(fmt.Sprintf("od: DiskStore finalize: %v", err))
	}
	defer w.Abort()
	if err := writeODs(w, s.ods); err != nil {
		panic(fmt.Sprintf("od: DiskStore finalize: %v", err))
	}
	types := make([]string, 0, len(valueObjs))
	for typ := range valueObjs {
		types = append(types, typ)
	}
	sort.Strings(types)
	for _, typ := range types {
		m := valueObjs[typ]
		if err := w.BeginType(typ, maxLens[typ], editBudget(theta, maxLens[typ])); err != nil {
			panic(fmt.Sprintf("od: DiskStore finalize: %v", err))
		}
		values := make([]string, 0, len(m))
		for v := range m {
			values = append(values, v)
		}
		sort.Strings(values)
		for _, v := range values {
			if err := w.AddValue(v, m[v]); err != nil {
				panic(fmt.Sprintf("od: DiskStore finalize: %v", err))
			}
		}
	}
	if err := w.Commit(odcodec.Meta{Theta: theta}); err != nil {
		panic(fmt.Sprintf("od: DiskStore finalize: %v", err))
	}

	s.ods = nil // from here on the segment files are the store
	r, err := odcodec.Open(s.dir)
	if err != nil {
		panic(fmt.Sprintf("od: DiskStore finalize: reopen own snapshot: %v", err))
	}
	s.serveFrom(r)
}

// serveFrom installs the reader and derives the query-phase state.
func (s *DiskStore) serveFrom(r *odcodec.Reader) {
	s.r = r
	meta := r.Meta()
	s.theta = meta.Theta
	s.size = meta.NumODs
	s.budgets = map[string]int{}
	s.stats = nil
	for _, tm := range r.Types() {
		s.budgets[tm.Name] = tm.Budget
		s.stats = append(s.stats, TypeStats{
			Type:           tm.Name,
			DistinctValues: tm.NumValues,
			MaxLen:         tm.MaxLen,
			EditBudget:     tm.Budget,
			Indexed:        false, // scans, never a deletion neighborhood
		})
	}
	s.odCache = newShardedLRU[int32, *OD](diskODCacheSize, hashID)
	s.occCache = newShardedLRU[string, []int32](diskOccCacheSize, hashKey)
	s.simCache = newShardedLRU[string, []ValueMatch](diskSimCacheSize, hashKey)
}

// Close releases the segment file handles. Queries after Close fail;
// the store object is done. Callers that obtained the store through
// the pipeline generally leak the handles to process exit instead,
// like any other Store they would drop.
func (s *DiskStore) Close() error {
	if s.r == nil {
		return nil
	}
	return s.r.Close()
}

// OD implements Store, decoding the record from disk through a
// fixed-capacity cache.
func (s *DiskStore) OD(id int32) *OD {
	s.mustBeFinal()
	if o, ok := s.odCache.get(id); ok {
		return o
	}
	obj, src, tuples, err := s.r.OD(id)
	if err != nil {
		panic(fmt.Sprintf("od: DiskStore: %v", err))
	}
	o := &OD{ID: id, Object: obj, Source: int(src), Tuples: make([]Tuple, len(tuples))}
	for i, t := range tuples {
		o.Tuples[i] = Tuple{Value: t.Value, Name: t.Name, Type: t.Type}
	}
	s.odCache.put(id, o)
	return o
}

// ODs implements Store. For a disk store this materializes every OD in
// memory on first call and keeps the slice — the escape hatch for
// consumers that genuinely need the whole set (the tree-edit baseline,
// diagnostics). The pipeline itself only uses OD(id).
func (s *DiskStore) ODs() []*OD {
	s.mustBeFinal()
	s.allMu.Lock()
	defer s.allMu.Unlock()
	if s.allODs == nil {
		s.allODs = make([]*OD, s.size)
		for id := int32(0); id < int32(s.size); id++ {
			s.allODs[id] = s.OD(id)
		}
	}
	return s.allODs
}

// ObjectsWithExact implements Store.
func (s *DiskStore) ObjectsWithExact(t Tuple) []int32 {
	s.mustBeFinal()
	key := t.occKey()
	if ids, ok := s.occCache.get(key); ok {
		return ids
	}
	ids, ok, err := s.r.LookupValue(t.Type, t.Value)
	if err != nil {
		panic(fmt.Sprintf("od: DiskStore: %v", err))
	}
	if !ok {
		ids = nil
	}
	s.occCache.put(key, ids)
	return ids
}

// SimilarValues implements Store: a sequential scan of the type's value
// segment with the same length-window pruning and θtuple re-check as
// the in-memory scan path, so the result set and order are identical.
func (s *DiskStore) SimilarValues(t Tuple) []ValueMatch {
	s.mustBeFinal()
	if t.Value == "" {
		return nil
	}
	if _, ok := s.budgets[t.Type]; !ok {
		return nil
	}
	cacheKey := t.occKey()
	if m, ok := s.simCache.get(cacheKey); ok {
		return m
	}
	q := t.Value
	qLen := len([]rune(q))
	var out []ValueMatch
	err := s.r.ScanType(t.Type, func(v string, runeLen int, postings func() ([]int32, error)) (bool, error) {
		m := qLen
		if runeLen > m {
			m = runeLen
		}
		budget := strdist.MaxEditsBelow(s.theta, m)
		if budget < 0 || strdist.Abs(qLen-runeLen) > budget {
			return false, nil
		}
		if !strdist.NormalizedBelow(q, v, s.theta) {
			return false, nil
		}
		ids, err := postings()
		if err != nil {
			return true, err
		}
		out = append(out, ValueMatch{Value: v, Objects: ids, Dist: strdist.Normalized(q, v)})
		return false, nil
	})
	if err != nil {
		panic(fmt.Sprintf("od: DiskStore: %v", err))
	}
	sortMatches(out)
	s.simCache.put(cacheKey, out)
	return out
}

// SoftIDF implements Store.
func (s *DiskStore) SoftIDF(a, b Tuple) float64 {
	s.mustBeFinal()
	oa := s.ObjectsWithExact(a)
	if a.occKey() == b.occKey() {
		return softIDF(s.size, len(oa))
	}
	return softIDF(s.size, unionSizeSorted(oa, s.ObjectsWithExact(b)))
}

// SoftIDFSingle implements Store.
func (s *DiskStore) SoftIDFSingle(t Tuple) float64 {
	return s.SoftIDF(t, t)
}

// Neighbors implements Store.
func (s *DiskStore) Neighbors(id int32) []int32 {
	s.mustBeFinal()
	return neighborsOf(s, id)
}

// Stats implements Store. Indexed is always false for the disk backend:
// it scans value segments instead of building deletion neighborhoods.
func (s *DiskStore) Stats() []TypeStats {
	s.mustBeFinal()
	return append([]TypeStats(nil), s.stats...)
}

func (s *DiskStore) mustBeFinal() {
	if !s.finalized || s.r == nil {
		panic("od: store not finalized")
	}
}
