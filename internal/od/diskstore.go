package od

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/od/odcodec"
	"repro/internal/strdist"
)

// DiskStore is the disk-resident Store backend: Finalize runs the same
// shared index builder as the in-memory backends, then streams the
// object descriptions and per-type value tables into odcodec segment
// files and serves every query from those files. After Finalize (or
// OpenDiskStore) the retained heap is bounded by the index directory
// and the fixed-capacity caches — not by corpus size — and the segment
// directory survives process restarts.
//
// Queries are answered with the same canonical results as MemStore:
// similar-value scans re-verify θtuple with the exact same normalized
// edit-distance checks, posting lists are stored sorted, and merged
// outputs use the shared canonical orderings. The internal/od and
// internal/core parity suites pin this bit-for-bit.
//
// Similar-value queries are served from the persisted deletion-
// neighborhood segment (the same FastSS buckets MemStore builds in
// memory), falling back to a sequential segment scan only when the
// snapshot predates the neighbor segment, the type's edit budget is
// out of the indexable range, or a query out-ranges the index — the
// exact coverage rule typeIndex.collect applies. Segments are memory-
// mapped when the platform allows it (DiskOptions.Mmap), so value
// decodes are pointer arithmetic into the page cache instead of
// positioned reads. Finalize still materializes the tables while
// building, so the build peak matches MemStore's — it is the
// post-build footprint and the OpenDiskStore path that are bounded.
// Pick this backend when indexes must outlive the process (warm
// starts), when the *retained* indexes of a long-lived server must not
// scale with corpus size, or as the serialization substrate for
// shipping indexes between processes.
type DiskStore struct {
	dir  string
	opts DiskOptions

	// Build phase.
	ods       []*OD
	finalized bool

	// Query phase.
	r        *odcodec.Reader
	theta    float64
	size     int // live objects (base minus removed plus added)
	stats    []TypeStats
	typeMeta map[string]odcodec.TypeMeta

	// Mutation phase (MutableStore): the base segments stay immutable;
	// every AddAfterFinalize/Remove batch commits an odcodec delta
	// segment first and then lands in this overlay, which the query
	// paths merge over the base. OpenDiskStore rebuilds the overlay by
	// replaying the delta files above the manifest's watermark; Save
	// folds everything into fresh base segments — in place for the
	// store's own directory (tombstones keep the ID space, the store
	// stays usable), compacted for a foreign directory.
	//
	// dirty reports that the overlay has diverged from what the base
	// manifest describes: in-process mutations or replayed unmerged
	// delta segments. A tombstone-only overlay seeded from the manifest
	// itself is not dirty — the snapshot fully describes that state.
	mut   *diskOverlay
	dirty bool

	odCache  *shardedLRU[int32, *OD]
	occCache *shardedLRU[string, []int32]
	simCache *shardedLRU[string, []ValueMatch]

	allMu  sync.Mutex
	allODs []*OD // materialized by ODs() on demand
}

// diskOverlay is the in-memory image of the committed delta segments.
type diskOverlay struct {
	baseN int32  // OD count of the base segments
	span  int32  // next ID to assign
	seq   uint64 // sequence of the last committed delta

	added    map[int32]*OD // appended ODs by ID
	addOrder []int32       // appended IDs in assignment order
	removed  map[int32]bool
	addOcc   map[string][]int32 // occKey -> appended live+removed ids, ascending

	addedVals   map[string][]addedVal // per type: values absent from the base segments
	addedValSet map[string]map[string]bool
}

// Cache capacities. Entries are recomputable, so these only bound the
// retained heap and the disk-read amplification; they are generous
// enough that the hot working set of the compare stage (the values of
// the objects in flight) stays resident.
const (
	diskODCacheSize  = 8192
	diskOccCacheSize = 16384
	diskSimCacheSize = 16384
)

var _ MutableStore = (*DiskStore)(nil)

// DiskOptions tunes how a DiskStore accesses its segment files. The
// zero value is the default configuration.
type DiskOptions struct {
	// Mmap selects how segment bytes are read: memory-mapped when the
	// platform supports it (MmapAuto, the default, with a transparent
	// fallback to positioned reads), forced on (open fails where
	// unsupported) or forced off.
	Mmap odcodec.MmapMode
	// DisableNeighborIndex forces every similar-value query onto the
	// sequential segment scan even when the snapshot carries the
	// deletion-neighborhood segment. A benchmarking knob — answers are
	// identical either way, only the access path changes.
	DisableNeighborIndex bool
}

func (o DiskOptions) codecOptions() odcodec.OpenOptions {
	return odcodec.OpenOptions{Mmap: o.Mmap}
}

// NewDiskStore returns an empty disk store that will write its segment
// files into dir at Finalize, replacing any previous snapshot there.
func NewDiskStore(dir string) *DiskStore {
	return NewDiskStoreWith(dir, DiskOptions{})
}

// NewDiskStoreWith is NewDiskStore with explicit access options.
func NewDiskStoreWith(dir string, opts DiskOptions) *DiskStore {
	return &DiskStore{dir: dir, opts: opts}
}

// OpenDiskStore opens the snapshot previously written to dir and
// returns a store that starts life finalized: Add and Finalize panic,
// every query serves from the segment files. The snapshot is fully
// checksum-verified before the first query; corrupt or missing
// snapshots are rejected (odcodec.ErrNoSnapshot, *odcodec.CorruptError).
// Delta segments committed after the base snapshot — post-Finalize
// mutations that have not been merged by Save yet — are verified and
// replayed, so the store reopens exactly where the mutating process
// left it.
func OpenDiskStore(dir string) (*DiskStore, error) {
	return OpenDiskStoreWith(dir, DiskOptions{})
}

// OpenDiskStoreWith is OpenDiskStore with explicit access options.
func OpenDiskStoreWith(dir string, opts DiskOptions) (*DiskStore, error) {
	r, err := odcodec.OpenWith(dir, opts.codecOptions())
	if err != nil {
		return nil, err
	}
	s := &DiskStore{dir: dir, opts: opts, finalized: true}
	s.serveFrom(r)
	deltas, err := odcodec.ReadDeltas(dir, r.Meta().DeltaSeq)
	if err != nil {
		r.Close()
		return nil, err
	}
	for _, d := range deltas {
		if err := s.replayDelta(d); err != nil {
			r.Close()
			return nil, err
		}
	}
	return s, nil
}

// Dir returns the snapshot directory.
func (s *DiskStore) Dir() string { return s.dir }

// Mutated reports whether the store's live state has diverged from what
// its base manifest describes — mutations applied in process, or
// unmerged delta segments replayed at open. The warm-start path must
// reject such stores: the manifest fingerprint corresponds to a corpus
// the live state no longer matches. A store whose only overlay is the
// manifest's own tombstone list is not mutated in this sense: the
// snapshot (fingerprint included) fully describes it.
func (s *DiskStore) Mutated() bool { return s.dirty }

// Fingerprint returns the corpus fingerprint stamped on the snapshot,
// or "" for a store finalized in-process and not yet stamped.
func (s *DiskStore) Fingerprint() string {
	s.mustBeFinal()
	return s.r.Meta().Fingerprint
}

// PersistedFilterValues returns the Step 4 filter bounds persisted with
// the snapshot, or nil. Index-aligned with OD ids.
func (s *DiskStore) PersistedFilterValues() []float64 {
	s.mustBeFinal()
	return s.r.Meta().FilterValues
}

// Add implements Store.
func (s *DiskStore) Add(o *OD) *OD {
	if s.finalized {
		panic("od: Add after Finalize")
	}
	o.ID = int32(len(s.ods))
	s.ods = append(s.ods, o)
	return o
}

// Size implements Store: live objects only.
func (s *DiskStore) Size() int {
	if s.finalized {
		return s.size
	}
	return len(s.ods)
}

// Alive implements MutableStore.
func (s *DiskStore) Alive(id int32) bool {
	if !s.finalized {
		return false
	}
	if s.mut == nil {
		return id >= 0 && int(id) < s.size
	}
	return id >= 0 && id < s.mut.span && !s.mut.removed[id]
}

// IDSpan implements MutableStore.
func (s *DiskStore) IDSpan() int32 {
	if s.mut != nil {
		return s.mut.span
	}
	return int32(s.size)
}

// Theta implements Store.
func (s *DiskStore) Theta() float64 { return s.theta }

// Finalize implements Store: it builds the indexes with the shared
// builder, writes the snapshot, drops the in-memory OD set and switches
// to serving from disk. The Store interface allows no error return, so
// an I/O failure while persisting panics with the underlying error —
// a half-written snapshot is never committed (the manifest is written
// last) and never served.
func (s *DiskStore) Finalize(theta float64) {
	if s.finalized {
		panic("od: Finalize called twice")
	}
	s.finalized = true

	occ := buildOccurrence(s.ods)
	valueObjs := groupValuesByType(occ)
	maxLens := maxValueLens(valueObjs)

	w, err := odcodec.NewWriter(s.dir)
	if err != nil {
		panic(fmt.Sprintf("od: DiskStore finalize: %v", err))
	}
	defer w.Abort()
	if err := writeODs(w, s.ods); err != nil {
		panic(fmt.Sprintf("od: DiskStore finalize: %v", err))
	}
	types := make([]string, 0, len(valueObjs))
	for typ := range valueObjs {
		types = append(types, typ)
	}
	sort.Strings(types)
	for _, typ := range types {
		m := valueObjs[typ]
		if err := w.BeginType(typ, maxLens[typ], editBudget(theta, maxLens[typ])); err != nil {
			panic(fmt.Sprintf("od: DiskStore finalize: %v", err))
		}
		values := make([]string, 0, len(m))
		for v := range m {
			values = append(values, v)
		}
		sort.Strings(values)
		for _, v := range values {
			if err := w.AddValue(v, m[v]); err != nil {
				panic(fmt.Sprintf("od: DiskStore finalize: %v", err))
			}
		}
	}
	// Stamp the manifest with the directory's highest stale delta
	// sequence: leftovers of an earlier store in this directory must sit
	// at or below the watermark so they can never replay onto this base.
	staleSeq, err := odcodec.MaxDeltaSeq(s.dir)
	if err != nil {
		panic(fmt.Sprintf("od: DiskStore finalize: %v", err))
	}
	if err := w.Commit(odcodec.Meta{Theta: theta, DeltaSeq: staleSeq}); err != nil {
		panic(fmt.Sprintf("od: DiskStore finalize: %v", err))
	}
	odcodec.RemoveDeltas(s.dir, staleSeq)

	s.ods = nil // from here on the segment files are the store
	r, err := odcodec.OpenWith(s.dir, s.opts.codecOptions())
	if err != nil {
		panic(fmt.Sprintf("od: DiskStore finalize: reopen own snapshot: %v", err))
	}
	s.serveFrom(r)
}

// serveFrom installs the reader and derives the query-phase state,
// including the overlay a tombstoned base snapshot implies (removed
// slots recorded in the manifest by an in-place merge). That seeded
// overlay leaves dirty false: the manifest fully describes it.
func (s *DiskStore) serveFrom(r *odcodec.Reader) {
	s.r = r
	meta := r.Meta()
	s.theta = meta.Theta
	s.size = meta.NumODs
	s.mut = nil
	s.dirty = false
	if len(meta.Tombstones) > 0 {
		s.size = meta.NumODs - len(meta.Tombstones)
		m := s.overlay()
		for _, id := range meta.Tombstones {
			m.removed[id] = true
		}
	}
	s.allMu.Lock()
	s.allODs = nil
	s.allMu.Unlock()
	s.typeMeta = map[string]odcodec.TypeMeta{}
	s.stats = nil
	for _, tm := range r.Types() {
		s.typeMeta[tm.Name] = tm
		s.stats = append(s.stats, TypeStats{
			Type:           tm.Name,
			DistinctValues: tm.NumValues,
			MaxLen:         tm.MaxLen,
			EditBudget:     tm.Budget,
			Indexed:        r.HasNeighbors(tm.Name),
		})
	}
	s.odCache = newShardedLRU[int32, *OD](diskODCacheSize, hashID)
	s.occCache = newShardedLRU[string, []int32](diskOccCacheSize, hashKey)
	s.simCache = newShardedLRU[string, []ValueMatch](diskSimCacheSize, hashKey)
}

// overlay returns the mutation overlay, creating it on first use.
func (s *DiskStore) overlay() *diskOverlay {
	if s.mut == nil {
		s.mut = &diskOverlay{
			baseN:       int32(s.r.Meta().NumODs),
			span:        int32(s.r.Meta().NumODs),
			seq:         s.r.Meta().DeltaSeq,
			added:       map[int32]*OD{},
			removed:     map[int32]bool{},
			addOcc:      map[string][]int32{},
			addedVals:   map[string][]addedVal{},
			addedValSet: map[string]map[string]bool{},
		}
	}
	return s.mut
}

// AddAfterFinalize implements MutableStore: the batch is committed as an
// append-only odcodec delta segment first, then folded into the
// in-memory overlay. A delta write failure leaves both disk and store
// unchanged.
func (s *DiskStore) AddAfterFinalize(ods []*OD) error {
	s.mustBeFinal()
	if len(ods) == 0 {
		return nil
	}
	m := s.overlay()
	// Stage first: the base-segment lookups that classify value newness
	// are the only fallible part of applying, so running them before the
	// delta commits keeps the batch atomic — any error here leaves both
	// disk and store untouched.
	staged, err := s.stageAdded(ods)
	if err != nil {
		return err
	}
	added := make([]odcodec.DeltaOD, len(ods))
	for i, o := range ods {
		tuples := make([]odcodec.Tuple, len(o.Tuples))
		for j, t := range o.Tuples {
			tuples[j] = odcodec.Tuple{Value: t.Value, Name: t.Name, Type: t.Type}
		}
		added[i] = odcodec.DeltaOD{Object: o.Object, Source: int32(o.Source), Tuples: tuples}
	}
	if err := odcodec.WriteDelta(s.dir, odcodec.Delta{Seq: m.seq + 1, Added: added}); err != nil {
		return fmt.Errorf("od: DiskStore: %w", err)
	}
	m.seq++
	s.dirty = true
	s.commitAdded(staged)
	s.invalidate()
	return nil
}

// Remove implements MutableStore, with the same delta-first protocol as
// AddAfterFinalize.
func (s *DiskStore) Remove(ids []int32) error {
	s.mustBeFinal()
	if err := validateRemovals(s.IDSpan(), s.Alive, ids); err != nil {
		return err
	}
	if len(ids) == 0 {
		return nil
	}
	m := s.overlay()
	sorted := append([]int32(nil), ids...)
	sortInt32s(sorted)
	if err := odcodec.WriteDelta(s.dir, odcodec.Delta{Seq: m.seq + 1, Removed: sorted}); err != nil {
		return fmt.Errorf("od: DiskStore: %w", err)
	}
	m.seq++
	s.dirty = true
	s.applyRemoved(sorted)
	s.invalidate()
	return nil
}

// stagedAdd is one appended OD with its pre-resolved index changes.
type stagedAdd struct {
	o       *OD
	keys    []string // distinct non-empty occurrence keys, in tuple order
	newVals []bool   // per key: value absent from base segments and overlay
}

// stageAdded resolves everything fallible about an add batch — the
// base-segment lookups classifying which values are new to the table —
// without touching the overlay. Shared between AddAfterFinalize (which
// stages before committing the delta) and the OpenDiskStore replay.
func (s *DiskStore) stageAdded(ods []*OD) ([]stagedAdd, error) {
	m := s.mut
	seen := map[string]bool{}
	staged := make([]stagedAdd, len(ods))
	// Values introduced earlier in this same batch are not "new" again.
	batchVals := map[string]bool{}
	for i, o := range ods {
		st := &staged[i]
		st.o = o
		var err error
		scanODTuples(o, seen, func(k string) {
			if err != nil {
				return
			}
			st.keys = append(st.keys, k)
			typ, val := splitOccKey(k)
			if m.addedValSet[typ][val] || batchVals[k] {
				st.newVals = append(st.newVals, false)
				return
			}
			_, inBase, lerr := s.r.LookupValue(typ, val)
			if lerr != nil {
				err = fmt.Errorf("od: DiskStore: %w", lerr)
				return
			}
			st.newVals = append(st.newVals, !inBase)
			if !inBase {
				batchVals[k] = true
			}
		})
		if err != nil {
			return nil, err
		}
	}
	return staged, nil
}

// commitAdded folds a staged batch into the overlay, assigning IDs.
// Infallible by construction — every lookup already happened in
// stageAdded.
func (s *DiskStore) commitAdded(staged []stagedAdd) {
	m := s.mut
	for _, st := range staged {
		o := st.o
		o.ID = m.span
		m.span++
		s.size++
		m.added[o.ID] = o
		m.addOrder = append(m.addOrder, o.ID)
		for i, k := range st.keys {
			m.addOcc[k] = append(m.addOcc[k], o.ID)
			if !st.newVals[i] {
				continue
			}
			typ, val := splitOccKey(k)
			set := m.addedValSet[typ]
			if set == nil {
				set = map[string]bool{}
				m.addedValSet[typ] = set
			}
			set[val] = true
			m.addedVals[typ] = append(m.addedVals[typ], newAddedVal(val))
		}
	}
}

// applyRemoved folds a removal batch into the overlay.
func (s *DiskStore) applyRemoved(ids []int32) {
	m := s.mut
	for _, id := range ids {
		m.removed[id] = true
		s.size--
	}
}

// replayDelta re-applies one persisted mutation batch while reopening.
func (s *DiskStore) replayDelta(d odcodec.Delta) error {
	m := s.overlay()
	if d.Seq != m.seq+1 {
		return fmt.Errorf("od: DiskStore: delta %d replayed out of order after %d", d.Seq, m.seq)
	}
	m.seq = d.Seq
	s.dirty = true
	for _, id := range d.Removed {
		if !s.Alive(id) {
			return fmt.Errorf("od: DiskStore: delta %d removes id %d which is not alive", d.Seq, id)
		}
	}
	if len(d.Added) > 0 {
		ods := make([]*OD, len(d.Added))
		for i, a := range d.Added {
			o := &OD{Object: a.Object, Source: int(a.Source), Tuples: make([]Tuple, len(a.Tuples))}
			for j, t := range a.Tuples {
				o.Tuples[j] = Tuple{Value: t.Value, Name: t.Name, Type: t.Type}
			}
			ods[i] = o
		}
		staged, err := s.stageAdded(ods)
		if err != nil {
			return err
		}
		s.commitAdded(staged)
	}
	s.applyRemoved(d.Removed)
	return nil
}

// invalidate drops every cache whose entries can mix base and overlay
// state. The OD cache survives: base records are immutable and removed
// IDs are filtered before the cache is consulted.
func (s *DiskStore) invalidate() {
	s.occCache = newShardedLRU[string, []int32](diskOccCacheSize, hashKey)
	s.simCache = newShardedLRU[string, []ValueMatch](diskSimCacheSize, hashKey)
	s.allMu.Lock()
	s.allODs = nil
	s.allMu.Unlock()
}

// forEachLiveValue calls fn for every live value of one type of a
// mutated store with its merged posting list — the base segment scan
// followed by the overlay's appended values, in no particular order.
// Stats and the snapshot export's measuring pass share it so "live
// values of a type" has exactly one definition.
func (s *DiskStore) forEachLiveValue(typ string, fn func(v string, ids []int32)) error {
	m := s.mut
	err := s.r.ScanType(typ, func(v string, runeLen int, postings func() ([]int32, error)) (bool, error) {
		ids, err := postings()
		if err != nil {
			return true, err
		}
		if merged := m.mergePostings(occKeyOf(typ, v), ids); merged != nil {
			fn(v, merged)
		}
		return false, nil
	})
	if err != nil {
		return err
	}
	for _, av := range m.addedVals[typ] {
		if merged := m.mergePostings(occKeyOf(typ, av.val), nil); merged != nil {
			fn(av.val, merged)
		}
	}
	return nil
}

// mergePostings overlays one value's base posting list: removed IDs are
// filtered out and appended IDs (all larger than any base ID) merged in,
// preserving ascending order. Returns nil when nothing lives.
func (m *diskOverlay) mergePostings(key string, base []int32) []int32 {
	add := m.addOcc[key]
	if len(m.removed) == 0 && len(add) == 0 {
		if len(base) == 0 {
			return nil
		}
		return base
	}
	out := make([]int32, 0, len(base)+len(add))
	for _, id := range base {
		if !m.removed[id] {
			out = append(out, id)
		}
	}
	for _, id := range add {
		if !m.removed[id] {
			out = append(out, id)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Close releases the segment file handles. Queries after Close fail;
// the store object is done. Callers that obtained the store through
// the pipeline generally leak the handles to process exit instead,
// like any other Store they would drop.
func (s *DiskStore) Close() error {
	if s.r == nil {
		return nil
	}
	return s.r.Close()
}

// OD implements Store, decoding the record from disk through a
// fixed-capacity cache. Returns nil for a removed id; appended ODs are
// served from the overlay.
func (s *DiskStore) OD(id int32) *OD {
	s.mustBeFinal()
	if m := s.mut; m != nil {
		if m.removed[id] {
			return nil
		}
		if id >= m.baseN {
			return m.added[id]
		}
	}
	if o, ok := s.odCache.get(id); ok {
		return o
	}
	obj, src, tuples, err := s.r.OD(id)
	if err != nil {
		panic(fmt.Sprintf("od: DiskStore: %v", err))
	}
	o := &OD{ID: id, Object: obj, Source: int(src), Tuples: make([]Tuple, len(tuples))}
	for i, t := range tuples {
		o.Tuples[i] = Tuple{Value: t.Value, Name: t.Name, Type: t.Type}
	}
	s.odCache.put(id, o)
	return o
}

// ODs implements Store. For a disk store this materializes every OD in
// memory on first call and keeps the slice — the escape hatch for
// consumers that genuinely need the whole set (the tree-edit baseline,
// diagnostics). The pipeline itself only uses OD(id).
func (s *DiskStore) ODs() []*OD {
	s.mustBeFinal()
	s.allMu.Lock()
	defer s.allMu.Unlock()
	if s.allODs == nil {
		span := s.IDSpan()
		s.allODs = make([]*OD, span)
		for id := int32(0); id < span; id++ {
			s.allODs[id] = s.OD(id) // nil at removed slots
		}
	}
	return s.allODs
}

// ObjectsWithExact implements Store. With an overlay present the cached
// entry is the merged (base minus removed plus appended) posting list.
func (s *DiskStore) ObjectsWithExact(t Tuple) []int32 {
	s.mustBeFinal()
	key := t.occKey()
	if ids, ok := s.occCache.get(key); ok {
		return ids
	}
	ids, ok, err := s.r.LookupValue(t.Type, t.Value)
	if err != nil {
		panic(fmt.Sprintf("od: DiskStore: %v", err))
	}
	if !ok {
		ids = nil
	}
	if s.mut != nil {
		ids = s.mut.mergePostings(key, ids)
	}
	s.occCache.put(key, ids)
	return ids
}

// SimilarValues implements Store. Base values are found through the
// persisted deletion-neighborhood segment when it covers the query
// (similarFromIndex), otherwise by a sequential scan of the type's
// value segment with the same length-window pruning and θtuple re-check
// as the in-memory scan path. Either way the result set and order are
// identical to MemStore's — both paths re-verify θtuple with the exact
// same normalized edit-distance checks, and FastSS guarantees the
// neighborhood candidates are complete within a covered budget. With an
// overlay present, base postings merge through it (values whose lists
// emptied drop out) and the type's appended values are scanned the same
// way.
func (s *DiskStore) SimilarValues(t Tuple) []ValueMatch {
	s.mustBeFinal()
	if t.Value == "" {
		return nil
	}
	var addedVals []addedVal
	if s.mut != nil {
		addedVals = s.mut.addedVals[t.Type]
	}
	if _, ok := s.typeMeta[t.Type]; !ok && len(addedVals) == 0 {
		return nil
	}
	cacheKey := t.occKey()
	if m, ok := s.simCache.get(cacheKey); ok {
		return m
	}
	q := t.Value
	qLen := len([]rune(q))
	out, ok := s.similarFromIndex(t.Type, q, qLen)
	if !ok {
		out = s.similarFromScan(t.Type, q, qLen)
	}
	collectAdded(addedVals, q, s.theta, func(v string) {
		ids := s.mut.mergePostings(occKeyOf(t.Type, v), nil)
		if ids == nil {
			return
		}
		out = append(out, ValueMatch{Value: v, Objects: ids, Dist: strdist.Normalized(q, v)})
	})
	sortMatches(out)
	s.simCache.put(cacheKey, out)
	return out
}

// similarFromIndex answers one similar-value query over the base values
// by probing the persisted deletion-neighborhood segment: the query's
// own deletion variants select candidate value ordinals (FastSS — two
// strings within the edit budget always share a variant, so the
// candidate set is complete), each candidate is decoded by ordinal and
// verified with the banded edit distance and the exact θtuple check.
// Reports ok=false — sending the caller to the sequential scan — when
// the snapshot has no neighbor segment for the type, the benchmarking
// knob disabled it, or the query could out-range the index: the same
// coverage rule typeIndex.collect applies in memory (the budget demanded
// by max(query length, longest indexed value) must not exceed the
// persisted budget).
func (s *DiskStore) similarFromIndex(typ, q string, qLen int) ([]ValueMatch, bool) {
	if s.opts.DisableNeighborIndex || !s.r.HasNeighbors(typ) {
		return nil, false
	}
	tm, ok := s.typeMeta[typ]
	if !ok {
		return nil, false
	}
	m := qLen
	if tm.MaxLen > m {
		m = tm.MaxLen
	}
	if need := strdist.MaxEditsBelow(s.theta, m); need < 0 || need > tm.Budget {
		return nil, false
	}
	seen := map[int32]bool{}
	var out []ValueMatch
	for _, variant := range strdist.DeletionVariants(q, tm.Budget) {
		ords, err := s.r.NeighborLookup(typ, variant)
		if err != nil {
			panic(fmt.Sprintf("od: DiskStore: %v", err))
		}
		for _, ord := range ords {
			if seen[ord] {
				continue
			}
			seen[ord] = true
			v, _, ids, err := s.r.ValueAt(typ, ord)
			if err != nil {
				panic(fmt.Sprintf("od: DiskStore: %v", err))
			}
			if _, within := strdist.LevenshteinBounded(q, v, tm.Budget); !within {
				continue
			}
			if !strdist.NormalizedBelow(q, v, s.theta) {
				continue
			}
			if s.mut != nil {
				if ids = s.mut.mergePostings(occKeyOf(typ, v), ids); ids == nil {
					continue
				}
			}
			out = append(out, ValueMatch{Value: v, Objects: ids, Dist: strdist.Normalized(q, v)})
		}
	}
	return out, true
}

// similarFromScan is the sequential fallback: every base value of the
// type streams past the same length-window pruning and θtuple re-check
// the in-memory scan path applies.
func (s *DiskStore) similarFromScan(typ, q string, qLen int) []ValueMatch {
	var out []ValueMatch
	err := s.r.ScanType(typ, func(v string, runeLen int, postings func() ([]int32, error)) (bool, error) {
		m := qLen
		if runeLen > m {
			m = runeLen
		}
		budget := strdist.MaxEditsBelow(s.theta, m)
		if budget < 0 || strdist.Abs(qLen-runeLen) > budget {
			return false, nil
		}
		if !strdist.NormalizedBelow(q, v, s.theta) {
			return false, nil
		}
		ids, err := postings()
		if err != nil {
			return true, err
		}
		if s.mut != nil {
			if ids = s.mut.mergePostings(occKeyOf(typ, v), ids); ids == nil {
				return false, nil
			}
		}
		out = append(out, ValueMatch{Value: v, Objects: ids, Dist: strdist.Normalized(q, v)})
		return false, nil
	})
	if err != nil {
		panic(fmt.Sprintf("od: DiskStore: %v", err))
	}
	return out
}

// SoftIDF implements Store.
func (s *DiskStore) SoftIDF(a, b Tuple) float64 {
	s.mustBeFinal()
	oa := s.ObjectsWithExact(a)
	if a.occKey() == b.occKey() {
		return softIDF(s.size, len(oa))
	}
	return softIDF(s.size, unionSizeSorted(oa, s.ObjectsWithExact(b)))
}

// SoftIDFSingle implements Store.
func (s *DiskStore) SoftIDFSingle(t Tuple) float64 {
	return s.SoftIDF(t, t)
}

// Neighbors implements Store.
func (s *DiskStore) Neighbors(id int32) []int32 {
	s.mustBeFinal()
	return neighborsOf(s, id)
}

// Stats implements Store. Indexed reports whether the snapshot carries
// a persisted deletion-neighborhood segment for the type — the same
// criterion MemStore uses for its in-memory index, and like MemStore a
// mutated store keeps reporting the base's choice. With an overlay
// present the rows are recomputed exactly over the live values,
// matching a fresh build over the live set.
func (s *DiskStore) Stats() []TypeStats {
	s.mustBeFinal()
	if s.mut == nil {
		return append([]TypeStats(nil), s.stats...)
	}
	types := map[string]bool{}
	for _, tm := range s.r.Types() {
		types[tm.Name] = true
	}
	for typ := range s.mut.addedVals {
		types[typ] = true
	}
	var out []TypeStats
	for typ := range types {
		distinct, maxLen := 0, 0
		err := s.forEachLiveValue(typ, func(v string, ids []int32) {
			distinct++
			if l := len([]rune(v)); l > maxLen {
				maxLen = l
			}
		})
		if err != nil {
			panic(fmt.Sprintf("od: DiskStore: %v", err))
		}
		if distinct == 0 {
			continue
		}
		out = append(out, TypeStats{
			Type:           typ,
			DistinctValues: distinct,
			MaxLen:         maxLen,
			EditBudget:     editBudget(s.theta, maxLen),
			Indexed:        s.r.HasNeighbors(typ),
		})
	}
	sortTypeStats(out)
	return out
}

// routingFilters implements variantFilterSource: covered filters are
// built by scanning the persisted neighbor segment's bucket keys —
// no deletion neighborhoods are recomputed — for every type whose
// snapshot carries one, the benchmarking knob has not disabled it, and
// the overlay has added no values (added values are absent from the
// segment, so a bloom over it would under-report the member; removals
// are harmless, stale bits only cost false positives). Everything else
// gets an uncovered entry.
func (s *DiskStore) routingFilters() []VariantFilter {
	s.mustBeFinal()
	addedTypes := map[string]bool{}
	if s.mut != nil {
		for typ := range s.mut.addedVals {
			addedTypes[typ] = true
		}
	}
	var out []VariantFilter
	for _, tm := range s.r.Types() {
		f := VariantFilter{Type: tm.Name, MaxLen: tm.MaxLen}
		if !s.opts.DisableNeighborIndex && !addedTypes[tm.Name] && s.r.HasNeighbors(tm.Name) {
			bits := newBloomBits(s.r.NeighborBuckets(tm.Name))
			ok, err := s.r.ScanNeighborVariants(tm.Name, func(v string) { bloomAdd(bits, variantHash(v)) })
			if err != nil {
				panic(fmt.Sprintf("od: DiskStore: %v", err))
			}
			if ok {
				f.Covered, f.Budget, f.Bits = true, tm.Budget, bits
			}
		}
		delete(addedTypes, tm.Name)
		out = append(out, f)
	}
	for typ := range addedTypes {
		// Values of a type the base snapshot never saw live only in the
		// overlay; the member must always be consulted for them.
		var maxLen int
		for _, av := range s.mut.addedVals[typ] {
			if l := len([]rune(av.val)); l > maxLen {
				maxLen = l
			}
		}
		out = append(out, VariantFilter{Type: typ, MaxLen: maxLen})
	}
	sortVariantFilters(out)
	return out
}

// CacheStats reports each bounded cache's counters, keyed "od" (decoded
// object descriptions), "occ" (posting lists) and "sim" (similar-value
// results). Counters reset when a cache is invalidated by a mutation
// batch or an in-place merge.
func (s *DiskStore) CacheStats() map[string]CacheStats {
	s.mustBeFinal()
	return map[string]CacheStats{
		"od":  s.odCache.stats(),
		"occ": s.occCache.stats(),
		"sim": s.simCache.stats(),
	}
}

func (s *DiskStore) mustBeFinal() {
	if !s.finalized || s.r == nil {
		panic("od: store not finalized")
	}
}
