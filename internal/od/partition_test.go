package od

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// buildFederation populates a PartitionedStore over the given member
// backends with copies of the ODs and finalizes it at theta.
func buildFederation(t *testing.T, ods []*OD, theta float64, backends ...Store) *PartitionedStore {
	t.Helper()
	parts := make([]Partition, len(backends))
	for i, b := range backends {
		parts[i] = LocalPartition{S: b}
	}
	fed := NewPartitionedStore(parts, 0)
	for _, o := range ods {
		cp := *o
		fed.Add(&cp)
	}
	fed.Finalize(theta)
	return fed
}

// mixedBackends returns n member backends cycling through all three
// Store implementations, so federation tests cover heterogeneous
// members ("each partition itself any existing Store").
func mixedBackends(t *testing.T, n int) []Store {
	t.Helper()
	out := make([]Store, n)
	for i := range out {
		switch i % 3 {
		case 0:
			out[i] = NewMemStore()
		case 1:
			out[i] = NewShardedStore(2)
		default:
			out[i] = NewDiskStore(t.TempDir())
		}
	}
	return out
}

// TestPartitionedStoreParity asserts that PartitionedStore answers
// every Store query bit-identically to MemStore on the generated CD and
// movie datasets, for 1 and 3 partitions over heterogeneous member
// backends.
func TestPartitionedStoreParity(t *testing.T) {
	datasets := []struct {
		name  string
		ods   []*OD
		theta float64
	}{
		{"cds", cdODs(120, 2005), 0.15},
		{"cds-coarse", cdODs(80, 7), 0.55},
		{"movies", movieODs(120, 11), 0.15},
	}
	for _, ds := range datasets {
		for _, nParts := range []int{1, 3} {
			t.Run(fmt.Sprintf("%s/partitions=%d", ds.name, nParts), func(t *testing.T) {
				mem := NewMemStore()
				for _, o := range ds.ods {
					cp := *o
					mem.Add(&cp)
				}
				mem.Finalize(ds.theta)
				fed := buildFederation(t, ds.ods, ds.theta, mixedBackends(t, nParts)...)
				defer fed.Close()

				if mem.Size() != fed.Size() || mem.Theta() != fed.Theta() {
					t.Fatalf("size/theta diverge: %d/%v vs %d/%v",
						mem.Size(), mem.Theta(), fed.Size(), fed.Theta())
				}
				normStats := func(sts []TypeStats) []TypeStats {
					for i := range sts {
						sts[i].Indexed = false
					}
					return sts
				}
				if got, want := normStats(fed.Stats()), normStats(mem.Stats()); !reflect.DeepEqual(got, want) {
					t.Errorf("Stats diverge:\nmem: %+v\nfed: %+v", want, got)
				}
				for id := int32(0); id < int32(mem.Size()); id++ {
					if got, want := fed.Neighbors(id), mem.Neighbors(id); !equalIDs(got, want) {
						t.Fatalf("Neighbors(%d) diverge: %v vs %v", id, got, want)
					}
				}
				for _, o := range mem.ODs() {
					for _, tup := range o.NonEmptyTuples() {
						if got, want := fed.ObjectsWithExact(tup), mem.ObjectsWithExact(tup); !equalIDs(got, want) {
							t.Fatalf("ObjectsWithExact(%v) diverge: %v vs %v", tup, got, want)
						}
						vm, vf := mem.SimilarValues(tup), fed.SimilarValues(tup)
						if !equalMatches(vm, vf) {
							t.Fatalf("SimilarValues(%v) diverge:\nmem: %v\nfed: %v", tup, vm, vf)
						}
						if gm, gf := mem.SoftIDFSingle(tup), fed.SoftIDFSingle(tup); gm != gf {
							t.Fatalf("SoftIDFSingle(%v) diverge: %v vs %v", tup, gm, gf)
						}
						for _, m := range vm {
							other := Tuple{Value: m.Value, Type: tup.Type}
							if gm, gf := mem.SoftIDF(tup, other), fed.SoftIDF(tup, other); gm != gf {
								t.Fatalf("SoftIDF(%v, %v) diverge: %v vs %v", tup, other, gm, gf)
							}
						}
					}
				}
			})
		}
	}
}

// faultyPartition wraps a Partition and fails a chosen operation after
// a countdown, simulating a member that dies mid-workload.
type faultyPartition struct {
	Partition
	failOp    string
	countdown int
}

var errInjected = errors.New("injected partition outage")

func (f *faultyPartition) maybeFail() error {
	f.countdown--
	if f.countdown <= 0 {
		return errInjected
	}
	return nil
}

func (f *faultyPartition) ObjectsWithExact(t Tuple) ([]int32, error) {
	if f.failOp == "exact" {
		if err := f.maybeFail(); err != nil {
			return nil, err
		}
	}
	return f.Partition.ObjectsWithExact(t)
}

func (f *faultyPartition) SimilarValues(t Tuple) ([]ValueMatch, error) {
	if f.failOp == "similar" {
		if err := f.maybeFail(); err != nil {
			return nil, err
		}
	}
	return f.Partition.SimilarValues(t)
}

func (f *faultyPartition) AddAfterFinalize(ods []*OD) error {
	if f.failOp == "add" {
		if err := f.maybeFail(); err != nil {
			return err
		}
	}
	return f.Partition.AddAfterFinalize(ods)
}

func (f *faultyPartition) Finalize(theta float64) error {
	if f.failOp == "finalize" {
		if err := f.maybeFail(); err != nil {
			return err
		}
	}
	return f.Partition.Finalize(theta)
}

// recoverPartitionError runs fn and returns the typed partition error
// it panics with, or nil when it completes.
func recoverPartitionError(fn func()) (pe *PartitionUnavailableError) {
	defer func() {
		if r := recover(); r != nil {
			var ok bool
			if pe, ok = r.(*PartitionUnavailableError); !ok {
				panic(r)
			}
		}
	}()
	fn()
	return nil
}

// TestPartitionedStoreQueryFault pins the failure contract: a member
// erroring mid-query surfaces as a typed PartitionUnavailableError (a
// panic, since Store queries have no error return), the federation is
// poisoned, and every later operation re-raises the same failure —
// never a partial answer.
func TestPartitionedStoreQueryFault(t *testing.T) {
	ods := cdODs(40, 5)
	faulty := &faultyPartition{Partition: LocalPartition{S: NewMemStore()}, failOp: "similar", countdown: 3}
	fed := NewPartitionedStore([]Partition{LocalPartition{S: NewMemStore()}, faulty, LocalPartition{S: NewMemStore()}}, 0)
	for _, o := range ods {
		cp := *o
		fed.Add(&cp)
	}
	fed.Finalize(0.15)

	var pe *PartitionUnavailableError
	for _, o := range fed.ODs() {
		for _, tup := range o.NonEmptyTuples() {
			if pe = recoverPartitionError(func() { fed.SimilarValues(tup) }); pe != nil {
				break
			}
		}
		if pe != nil {
			break
		}
	}
	if pe == nil {
		t.Fatal("faulty member never surfaced an error")
	}
	if pe.Partition != 1 || !errors.Is(pe, errInjected) {
		t.Fatalf("error = %v, want partition 1 wrapping the injected outage", pe)
	}
	// Poisoned: every path re-raises, mutations included.
	if got := recoverPartitionError(func() { fed.Neighbors(0) }); got == nil {
		t.Fatal("poisoned federation answered Neighbors")
	}
	if got := recoverPartitionError(func() { fed.ObjectsWithExact(Tuple{Value: "x", Type: "ARTIST"}) }); got == nil {
		t.Fatal("poisoned federation answered ObjectsWithExact")
	}
	if err := fed.AddAfterFinalize([]*OD{{Object: "/x"}}); err == nil || !errors.Is(err, errInjected) {
		t.Fatalf("poisoned federation accepted a mutation: %v", err)
	}
	if err := fed.Remove([]int32{0}); err == nil {
		t.Fatal("poisoned federation accepted a removal")
	}
}

// TestPartitionedStoreMutationFault pins the mutation-failure side: a
// member failing AddAfterFinalize returns the typed error and poisons
// the federation, so the divergence can never be observed by queries.
func TestPartitionedStoreMutationFault(t *testing.T) {
	ods := cdODs(20, 6)
	faulty := &faultyPartition{Partition: LocalPartition{S: NewMemStore()}, failOp: "add", countdown: 1}
	fed := NewPartitionedStore([]Partition{LocalPartition{S: NewMemStore()}, faulty}, 0)
	for _, o := range ods {
		cp := *o
		fed.Add(&cp)
	}
	fed.Finalize(0.15)

	err := fed.AddAfterFinalize(copyODs(cdODs(2, 7)))
	var pe *PartitionUnavailableError
	if !errors.As(err, &pe) || pe.Partition != 1 {
		t.Fatalf("AddAfterFinalize error = %v, want PartitionUnavailableError for member 1", err)
	}
	if got := recoverPartitionError(func() { fed.SimilarValues(Tuple{Value: "x", Type: "ARTIST"}) }); got == nil {
		t.Fatal("queries still answered after a failed mutation batch")
	}
}

// TestPartitionedStoreFinalizeFault pins the build-phase failure: a
// member dying during the Finalize fan-out surfaces as the typed error
// and the federation never serves.
func TestPartitionedStoreFinalizeFault(t *testing.T) {
	ods := cdODs(10, 8)
	faulty := &faultyPartition{Partition: LocalPartition{S: NewMemStore()}, failOp: "finalize", countdown: 1}
	fed := NewPartitionedStore([]Partition{LocalPartition{S: NewMemStore()}, faulty}, 0)
	for _, o := range ods {
		cp := *o
		fed.Add(&cp)
	}
	pe := recoverPartitionError(func() { fed.Finalize(0.15) })
	if pe == nil || pe.Partition != 1 || pe.Op != "Finalize" {
		t.Fatalf("Finalize fault = %v, want typed error for member 1", pe)
	}
}
