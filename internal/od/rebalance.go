package od

import (
	"fmt"
	"sync"
)

// This file is segment-level rebalancing: moving a finalized
// federation to a new partition count and/or routing seed by streaming
// each member's postings to their new owners, member-to-member through
// the Partition interface — never re-ingesting the corpus. The
// coordinator drives windows of the ID space: every old member exports
// its shadows for the window (ExportODs), the coordinator re-routes
// each tuple by the new (seed, count) hash and ships the merged
// shadows to the new members, and the new coordinator directory copies
// the old one with removed slots compacted away. The result is
// bit-identical to a fresh build at the new layout: member indexes are
// value-set-keyed (tuple grouping order cannot show through sorted
// postings), and the coordinator objects are the originals, tuple
// order and all.

// RebalanceInfo records the layout a rebalanced federation was
// streamed out of — provenance the federation manifest carries.
type RebalanceInfo struct {
	// FromPartitions is the source federation's partition count.
	FromPartitions int
	// FromSeed is the source federation's routing hash seed.
	FromSeed uint32
}

// rebalanceChunk bounds one export window of the ID space.
const rebalanceChunk = 2048

// Rebalance streams this federation's postings into a new federation
// over the given members at the given routing seed. The members must
// be empty, build-phase stores; the source federation must be
// finalized and healthy, and keeps serving reads untouched (exports go
// through the replica-failover read path). The returned federation is
// finalized, verified member-by-member, and stamped with the source
// layout (RebalancedFrom); removed slots compact away, so its ID space
// is dense like a freshly saved snapshot's. Replicas do not carry
// over — attach fresh ones to the new federation.
func (s *PartitionedStore) Rebalance(parts []Partition, seed uint32) (*PartitionedStore, error) {
	s.mustBeFinal()
	if e := s.failed.Load(); e != nil {
		return nil, e
	}
	ns := NewPartitionedStore(parts, seed)
	ns.rebalanced = &RebalanceInfo{FromPartitions: len(s.parts), FromSeed: s.seed}
	ns.fingerprint = s.fingerprint

	span := s.dir.span()
	for lo := int32(0); lo < span; lo += rebalanceChunk {
		hi := lo + rebalanceChunk
		if hi > span {
			hi = span
		}
		exports := make([][]*OD, len(s.parts))
		if err := s.readFanOut("Rebalance", func(i int, p Partition) error {
			out, err := p.ExportODs(lo, hi)
			if err != nil {
				return err
			}
			if int32(len(out)) != hi-lo {
				return fmt.Errorf("exported %d of %d shadows", len(out), hi-lo)
			}
			exports[i] = out
			return nil
		}); err != nil {
			return nil, err
		}

		shadows := make([][]*OD, len(parts))
		for j := int32(0); j < hi-lo; j++ {
			old := s.dir.od(lo + j)
			if old == nil {
				for i := range exports {
					if exports[i][j] != nil {
						return nil, fmt.Errorf("od: rebalance: partition %d still holds a shadow of removed object %d — federation state diverged", i, lo+j)
					}
				}
				continue
			}
			owned := make([][]Tuple, len(parts))
			for i := range exports {
				e := exports[i][j]
				if e == nil {
					return nil, fmt.Errorf("od: rebalance: partition %d has no shadow for live object %d — federation state diverged", i, lo+j)
				}
				for _, t := range e.Tuples {
					k := partitionIndex(t.occKey(), seed, len(parts))
					owned[k] = append(owned[k], t)
				}
			}
			// The new coordinator object is the old one, re-IDed into the
			// compacted space — tuple order, empty-value tuples and all, so
			// the compare stage reads exactly what a fresh build would hold.
			co := *old
			co.ID = ns.dir.span()
			ns.dir.append(&co)
			for k := range shadows {
				shadows[k] = append(shadows[k], &OD{Object: old.Object, Source: old.Source, Tuples: owned[k]})
			}
		}

		var wg sync.WaitGroup
		errs := make([]error, len(parts))
		for k := range parts {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				errs[k] = parts[k].AddODs(shadows[k])
			}(k)
		}
		wg.Wait()
		for k, err := range errs {
			if err != nil {
				return nil, ns.setFailed(&PartitionUnavailableError{Partition: k, Op: "Rebalance", Err: err})
			}
		}
	}

	ns.live = int(ns.dir.span())
	ns.theta = s.theta
	ns.finalized = true
	if err := ns.writeFanOut("Rebalance", func(k, m int, p Partition) error {
		if err := p.Finalize(s.theta); err != nil {
			return err
		}
		info, err := p.Info()
		if err != nil {
			return err
		}
		if info.Size != ns.live || info.Theta != s.theta {
			return fmt.Errorf("member finalized %d objects at θ=%v, rebalance expects %d at θ=%v",
				info.Size, info.Theta, ns.live, s.theta)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := ns.initRouting(); err != nil {
		return nil, err
	}
	ns.clearCaches()
	return ns, nil
}
