package od

import "fmt"

// This file is the replication side of the federation: every partition
// may carry extra read members ("replicas") holding bit-identical
// state. Reads fail over inside the group (partition.go's callRead);
// writes fan out to every group member and stay fail-stop, so the
// group never forks. AttachReplicas is the only way replicas join —
// either before Finalize (they ride the build fan-out) or after it
// (they hydrate by streaming the group's shadows through ExportODs).

// replicaHydrateChunk bounds one hydration export window — the same
// scale the wire transport's frame limit expects.
const replicaHydrateChunk = 2048

// AttachReplicas registers replica members, one group per partition
// (replicas[i] joins partition i; empty groups are allowed). Called
// before Finalize, the replicas simply ride the build fan-out. Called
// on a finalized federation, each replica hydrates first: the group's
// shadow stream replays onto it — live shadows in ID order with
// placeholder objects at removed slots, Finalize at the federation's
// θtuple, then removal of the placeholders — which the backend parity
// contract guarantees lands bit-identical to the group's state. Only
// after every replica hydrates and verifies does the group layout
// commit; a failure mid-hydration leaves the federation serving
// exactly as before (the new replicas are simply not attached).
func (s *PartitionedStore) AttachReplicas(replicas [][]Partition) error {
	if len(replicas) != len(s.parts) {
		return fmt.Errorf("od: %d replica groups for %d partitions", len(replicas), len(s.parts))
	}
	if s.replicas != nil {
		return fmt.Errorf("od: replicas already attached")
	}
	if e := s.failed.Load(); e != nil {
		return e
	}
	if s.finalized {
		for i := range replicas {
			for _, r := range replicas[i] {
				if err := s.hydrateReplica(i, r); err != nil {
					return fmt.Errorf("od: hydrate replica of partition %d: %w", i, err)
				}
			}
		}
	}
	s.replicas = replicas
	s.resetHealth()
	return nil
}

// hydrateReplica replays the federation's state onto one fresh,
// build-phase replica of partition i by streaming the group's shadows
// through ExportODs. The ID space may carry holes (removed objects);
// the replay ships an empty placeholder at each hole so backend-
// assigned IDs stay aligned, then removes the placeholders after
// Finalize — the same build-then-mutate sequence every group member's
// state is equivalent to.
func (s *PartitionedStore) hydrateReplica(i int, r Partition) error {
	span := s.dir.span()
	var holes []int32
	for lo := int32(0); lo < span; lo += replicaHydrateChunk {
		hi := lo + replicaHydrateChunk
		if hi > span {
			hi = span
		}
		var exported []*OD
		if err := s.callRead("AttachReplicas", i, func(p Partition) error {
			var err error
			exported, err = p.ExportODs(lo, hi)
			return err
		}); err != nil {
			return err
		}
		if int32(len(exported)) != hi-lo {
			return fmt.Errorf("partition %d exported %d of %d shadows", i, len(exported), hi-lo)
		}
		adds := make([]*OD, 0, len(exported))
		for j, e := range exported {
			id := lo + int32(j)
			if e == nil {
				if s.dir.od(id) != nil {
					return fmt.Errorf("partition %d has no shadow for live object %d — group state diverged", i, id)
				}
				holes = append(holes, id)
				adds = append(adds, &OD{})
				continue
			}
			adds = append(adds, &OD{Object: e.Object, Source: e.Source, Tuples: e.Tuples})
		}
		if err := r.AddODs(adds); err != nil {
			return err
		}
	}
	if err := r.Finalize(s.theta); err != nil {
		return err
	}
	if len(holes) > 0 {
		if err := r.Remove(holes); err != nil {
			return err
		}
	}
	info, err := r.Info()
	if err != nil {
		return err
	}
	if info.Size != s.live || info.Theta != s.theta || info.Span != span {
		return fmt.Errorf("replica hydrated to %d objects (span %d) at θ=%v; group holds %d (span %d) at θ=%v",
			info.Size, info.Span, info.Theta, s.live, span, s.theta)
	}
	return nil
}
