package od

import (
	"fmt"
	"math"
	"path/filepath"
	"sort"

	"repro/internal/od/odcodec"
)

// SnapshotMeta is the provenance a snapshot is stamped with when saved.
type SnapshotMeta struct {
	// Fingerprint identifies the corpus + detection configuration the
	// indexes were built from (internal/core computes it); warm starts
	// require an exact match.
	Fingerprint string
	// FilterValues optionally persists the Step 4 object-filter bounds
	// per OD so a warm start can skip recomputing them. May be nil.
	FilterValues []float64
}

// Save persists a finalized store into dir in the DiskStore segment
// format, so a later OpenDiskStore (or the pipeline's warm-start path)
// restores it without rebuilding any index. Every backend can be saved:
// an unmutated DiskStore that already lives in dir only has its manifest
// re-stamped with the meta; MemStore, ShardedStore and foreign-directory
// DiskStores are exported table by table. The snapshot commits
// atomically — its manifest is written last.
//
// A mutated store exports its live set with the ID space compacted
// (holes from Remove close up, order preserved), so the snapshot is
// indistinguishable from a fresh build over the live objects.
// meta.FilterValues must therefore be live-compacted too: one value per
// live OD in ascending ID order.
//
// A mutated DiskStore saving into its own directory is *merged in
// place*: the overlay folds into fresh base segments that keep the ID
// space unrenumbered (removed slots persist as stub records listed in
// the manifest's tombstone set), the delta watermark advances past
// every folded segment, and the stale delta files are deleted. The
// in-process store re-points itself at the merged base and stays fully
// usable — queries and further AddAfterFinalize/Remove batches continue
// with the same IDs, and a reopen reproduces the exact same state.
func Save(dir string, s Store, meta SnapshotMeta) error {
	if meta.FilterValues != nil && len(meta.FilterValues) != s.Size() {
		return fmt.Errorf("od: save: %d filter values for %d live ODs", len(meta.FilterValues), s.Size())
	}
	if ds, ok := s.(*DiskStore); ok && sameDir(ds.dir, dir) {
		ds.mustBeFinal()
		if !ds.dirty {
			if ds.r.Version() >= odcodec.Version {
				// The base manifest already describes the live state
				// (tombstones included); only the provenance changes.
				return odcodec.UpdateMeta(dir, meta.Fingerprint, ds.expandFilterValues(meta.FilterValues))
			}
			// An older-format base cannot be re-stamped: the manifest's
			// version governs every segment, so the snapshot is rewritten
			// in the current format instead — which also gains it the
			// segments the old format lacked (the deletion-neighborhood
			// index, the shared string heap). The merge machinery already
			// does exactly this rewrite; an empty overlay makes it a pure
			// format upgrade with the ID space untouched.
			ds.overlay()
			return ds.mergeInPlace(meta)
		}
		return ds.mergeInPlace(meta)
	}
	return exportTo(dir, s, meta)
}

// exportTo writes a full compact snapshot of s into dir and stamps its
// manifest so any stale delta file in dir sits at or below the
// watermark.
func exportTo(dir string, s Store, meta SnapshotMeta) error {
	exp, ok := s.(interface {
		exportSnapshot(w *odcodec.Writer) error
	})
	if !ok {
		return fmt.Errorf("od: save: backend %T cannot be snapshotted", s)
	}
	w, err := odcodec.NewWriter(dir)
	if err != nil {
		return err
	}
	defer w.Abort()
	if err := exp.exportSnapshot(w); err != nil {
		return err
	}
	staleSeq, err := odcodec.MaxDeltaSeq(dir)
	if err != nil {
		return err
	}
	if err := w.Commit(odcodec.Meta{
		Fingerprint:  meta.Fingerprint,
		Theta:        s.Theta(),
		FilterValues: meta.FilterValues,
		DeltaSeq:     staleSeq,
	}); err != nil {
		return err
	}
	odcodec.RemoveDeltas(dir, staleSeq)
	return nil
}

// buildRemap maps each live old ID to its compacted snapshot ID.
func buildRemap(span int32, alive func(int32) bool) []int32 {
	remap := make([]int32, span)
	next := int32(0)
	for id := int32(0); id < span; id++ {
		if alive(id) {
			remap[id] = next
			next++
		} else {
			remap[id] = -1
		}
	}
	return remap
}

// remapIDs rewrites a live posting list through the compaction map. The
// map is order-preserving, so the result stays strictly ascending.
func remapIDs(ids []int32, remap []int32) []int32 {
	out := make([]int32, len(ids))
	for i, id := range ids {
		out[i] = remap[id]
	}
	return out
}

func sameDir(a, b string) bool {
	if a == b {
		return true
	}
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	return err1 == nil && err2 == nil && aa == bb
}

// writeODs streams the OD records in ID order, skipping removed (nil)
// slots — the snapshot's compact ID space is the live subsequence.
func writeODs(w *odcodec.Writer, ods []*OD) error {
	tuples := make([]odcodec.Tuple, 0, 16)
	for _, o := range ods {
		if o == nil {
			continue
		}
		tuples = tuples[:0]
		for _, t := range o.Tuples {
			tuples = append(tuples, odcodec.Tuple{Value: t.Value, Name: t.Name, Type: t.Type})
		}
		if err := w.AddOD(o.Object, int32(o.Source), tuples); err != nil {
			return err
		}
	}
	return nil
}

// exportSnapshot writes the MemStore's tables: the typeIndex already
// holds each type's values sorted with aligned posting lists. A mutated
// store takes the slow path: live value tables are assembled through the
// overlay and posting lists rewritten into the compacted ID space.
func (s *MemStore) exportSnapshot(w *odcodec.Writer) error {
	s.mustBeFinal()
	if err := writeODs(w, s.ods); err != nil {
		return err
	}
	if s.mutated {
		return s.exportLive(w)
	}
	names := make([]string, 0, len(s.types))
	for typ := range s.types {
		names = append(names, typ)
	}
	sort.Strings(names)
	for _, typ := range names {
		ti := s.types[typ]
		if err := w.BeginType(typ, ti.maxLen, ti.budget); err != nil {
			return err
		}
		for i, v := range ti.values {
			if err := w.AddValue(v, ti.objects[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// exportLive writes a mutated MemStore's live value tables.
func (s *MemStore) exportLive(w *odcodec.Writer) error {
	remap := buildRemap(s.IDSpan(), s.Alive)
	names := map[string]bool{}
	for typ := range s.types {
		names[typ] = true
	}
	for typ := range s.deltas {
		names[typ] = true
	}
	sorted := make([]string, 0, len(names))
	for typ := range names {
		sorted = append(sorted, typ)
	}
	sort.Strings(sorted)
	for _, typ := range sorted {
		m, maxLen := liveValueTable(s.types[typ], s.deltas[typ], func(val string) []int32 {
			return s.occ[occKeyOf(typ, val)]
		})
		if m == nil {
			continue
		}
		if err := writeLiveType(w, typ, m, maxLen, s.theta, remap); err != nil {
			return err
		}
	}
	return nil
}

// writeLiveType streams one live value table in canonical order.
func writeLiveType(w *odcodec.Writer, typ string, m map[string][]int32, maxLen int, theta float64, remap []int32) error {
	if err := w.BeginType(typ, maxLen, editBudget(theta, maxLen)); err != nil {
		return err
	}
	values := make([]string, 0, len(m))
	for v := range m {
		values = append(values, v)
	}
	sort.Strings(values)
	for _, v := range values {
		if err := w.AddValue(v, remapIDs(m[v], remap)); err != nil {
			return err
		}
	}
	return nil
}

// exportSnapshot merges the ShardedStore's per-shard value tables into
// the canonical single-table layout: values partition across shards, so
// concatenating and sorting each type's shard slices reproduces exactly
// the table MemStore would have built. A mutated store assembles live
// tables through the per-shard overlays and compacts the ID space.
func (s *ShardedStore) exportSnapshot(w *odcodec.Writer) error {
	s.mustBeFinal()
	if err := writeODs(w, s.ods); err != nil {
		return err
	}
	if s.mutated {
		return s.exportLive(w)
	}
	type valueRow struct {
		value   string
		objects []int32
	}
	merged := map[string][]valueRow{}
	maxLen := map[string]int{}
	budget := map[string]int{}
	for i := range s.shards {
		for typ, ti := range s.shards[i].types {
			rows := merged[typ]
			for j, v := range ti.values {
				rows = append(rows, valueRow{value: v, objects: ti.objects[j]})
			}
			merged[typ] = rows
			if ti.maxLen > maxLen[typ] {
				maxLen[typ] = ti.maxLen
			}
			budget[typ] = ti.budget // global by construction, same in every shard
		}
	}
	names := make([]string, 0, len(merged))
	for typ := range merged {
		names = append(names, typ)
	}
	sort.Strings(names)
	for _, typ := range names {
		rows := merged[typ]
		sort.Slice(rows, func(i, j int) bool { return rows[i].value < rows[j].value })
		if err := w.BeginType(typ, maxLen[typ], budget[typ]); err != nil {
			return err
		}
		for _, row := range rows {
			if err := w.AddValue(row.value, row.objects); err != nil {
				return err
			}
		}
	}
	return nil
}

// exportLive writes a mutated ShardedStore's live value tables, merged
// across shards into the canonical single-table layout.
func (s *ShardedStore) exportLive(w *odcodec.Writer) error {
	remap := buildRemap(s.IDSpan(), s.Alive)
	perType := map[string]map[string][]int32{}
	maxLens := map[string]int{}
	for i := range s.shards {
		sh := &s.shards[i]
		names := map[string]bool{}
		for typ := range sh.types {
			names[typ] = true
		}
		for typ := range sh.deltas {
			names[typ] = true
		}
		for typ := range names {
			m, maxLen := liveValueTable(sh.types[typ], sh.deltas[typ], func(val string) []int32 {
				return sh.occ[occKeyOf(typ, val)]
			})
			if m == nil {
				continue
			}
			dst := perType[typ]
			if dst == nil {
				dst = map[string][]int32{}
				perType[typ] = dst
			}
			for v, ids := range m {
				dst[v] = ids // values partition across shards: no collisions
			}
			if maxLen > maxLens[typ] {
				maxLens[typ] = maxLen
			}
		}
	}
	sorted := make([]string, 0, len(perType))
	for typ := range perType {
		sorted = append(sorted, typ)
	}
	sort.Strings(sorted)
	for _, typ := range sorted {
		if err := writeLiveType(w, typ, perType[typ], maxLens[typ], s.theta, remap); err != nil {
			return err
		}
	}
	return nil
}

// exportSnapshot re-exports a disk store by streaming its own segments —
// used when the snapshot target differs from the store's directory, and
// as the merge path that folds a mutated store's overlay into fresh base
// segments.
func (s *DiskStore) exportSnapshot(w *odcodec.Writer) error {
	s.mustBeFinal()
	if s.mut == nil {
		for id := int32(0); id < int32(s.size); id++ {
			obj, src, tuples, err := s.r.OD(id)
			if err != nil {
				return err
			}
			if err := w.AddOD(obj, src, tuples); err != nil {
				return err
			}
		}
		for _, tm := range s.r.Types() {
			if err := w.BeginType(tm.Name, tm.MaxLen, tm.Budget); err != nil {
				return err
			}
			err := s.r.ScanType(tm.Name, func(v string, runeLen int, postings func() ([]int32, error)) (bool, error) {
				ids, err := postings()
				if err != nil {
					return true, err
				}
				return false, w.AddValue(v, ids)
			})
			if err != nil {
				return err
			}
		}
		return nil
	}
	return s.exportLive(w)
}

// exportLive streams a mutated DiskStore's live state: base ODs minus
// removals, then appended ODs, with posting lists merged through the
// overlay and rewritten into the compacted ID space. Each type's value
// segment is scanned twice — once to size the edit budget over the live
// values, once to write them — keeping the merge's memory bounded by one
// value table row.
func (s *DiskStore) exportLive(w *odcodec.Writer) error {
	m := s.mut
	remap := buildRemap(s.IDSpan(), s.Alive)
	for id := int32(0); id < m.baseN; id++ {
		if m.removed[id] {
			continue
		}
		obj, src, tuples, err := s.r.OD(id)
		if err != nil {
			return err
		}
		if err := w.AddOD(obj, src, tuples); err != nil {
			return err
		}
	}
	tupleBuf := make([]odcodec.Tuple, 0, 16)
	for _, id := range m.addOrder {
		if m.removed[id] {
			continue
		}
		o := m.added[id]
		tupleBuf = tupleBuf[:0]
		for _, t := range o.Tuples {
			tupleBuf = append(tupleBuf, odcodec.Tuple{Value: t.Value, Name: t.Name, Type: t.Type})
		}
		if err := w.AddOD(o.Object, int32(o.Source), tupleBuf); err != nil {
			return err
		}
	}

	return s.exportLiveTypes(w, remap)
}

// exportLiveTypes streams every type's live value table — base postings
// merged through the overlay, appended values interleaved in value
// order — into the writer. remap rewrites posting IDs into a compacted
// space; nil keeps the original IDs (the in-place merge path).
func (s *DiskStore) exportLiveTypes(w *odcodec.Writer, remap []int32) error {
	m := s.mut
	names := map[string]bool{}
	for _, tm := range s.r.Types() {
		names[tm.Name] = true
	}
	for typ := range m.addedVals {
		names[typ] = true
	}
	sorted := make([]string, 0, len(names))
	for typ := range names {
		sorted = append(sorted, typ)
	}
	sort.Strings(sorted)
	for _, typ := range sorted {
		// Pass 1: live max value length for the type's edit budget.
		maxLen, live := 0, 0
		err := s.forEachLiveValue(typ, func(v string, ids []int32) {
			live++
			if l := len([]rune(v)); l > maxLen {
				maxLen = l
			}
		})
		if err != nil {
			return err
		}
		addedSorted := make([]string, 0, len(m.addedVals[typ]))
		for _, av := range m.addedVals[typ] {
			addedSorted = append(addedSorted, av.val)
		}
		sort.Strings(addedSorted)
		if live == 0 {
			continue
		}
		if err := w.BeginType(typ, maxLen, editBudget(s.theta, maxLen)); err != nil {
			return err
		}
		// Pass 2: merge the base scan (ascending) with the sorted
		// appended values (disjoint from base by construction).
		next := 0
		emit := func(v string, ids []int32) error {
			if len(ids) == 0 {
				return nil
			}
			if remap != nil {
				ids = remapIDs(ids, remap)
			}
			return w.AddValue(v, ids)
		}
		err = s.r.ScanType(typ, func(v string, runeLen int, postings func() ([]int32, error)) (bool, error) {
			ids, err := postings()
			if err != nil {
				return true, err
			}
			for next < len(addedSorted) && addedSorted[next] < v {
				if err := emit(addedSorted[next], m.mergePostings(occKeyOf(typ, addedSorted[next]), nil)); err != nil {
					return true, err
				}
				next++
			}
			return false, emit(v, m.mergePostings(occKeyOf(typ, v), ids))
		})
		if err != nil {
			return err
		}
		for ; next < len(addedSorted); next++ {
			if err := emit(addedSorted[next], m.mergePostings(occKeyOf(typ, addedSorted[next]), nil)); err != nil {
				return err
			}
		}
	}
	return nil
}

// expandFilterValues re-expands live-compacted filter bounds (one per
// live OD, ascending ID order — the shape Save's contract requires)
// into the slot-aligned layout a tombstoned manifest stores: one value
// per ID in [0, IDSpan()), NaN at dead slots. Identity when the store
// has no holes.
func (s *DiskStore) expandFilterValues(fv []float64) []float64 {
	if fv == nil || s.mut == nil {
		return fv
	}
	span := s.IDSpan()
	out := make([]float64, span)
	next := 0
	for id := int32(0); id < span; id++ {
		if s.Alive(id) {
			out[id] = fv[next]
			next++
		} else {
			out[id] = math.NaN()
		}
	}
	return out
}

// mergeInPlace folds a dirty DiskStore's overlay into fresh base
// segments in its own directory without renumbering the ID space:
// every slot keeps its record (removed ones as empty stubs listed in
// the manifest's tombstone set), posting lists keep their IDs, the
// delta watermark advances past every folded segment and the stale
// delta files are deleted. The in-process store then re-points itself
// at the merged base — same answers, same IDs, still mutable.
func (s *DiskStore) mergeInPlace(meta SnapshotMeta) error {
	m := s.mut
	w, err := odcodec.NewWriter(s.dir)
	if err != nil {
		return err
	}
	defer w.Abort()
	stub := func() error { return w.AddOD("", 0, nil) }
	for id := int32(0); id < m.baseN; id++ {
		if m.removed[id] {
			if err := stub(); err != nil {
				return err
			}
			continue
		}
		obj, src, tuples, err := s.r.OD(id)
		if err != nil {
			return err
		}
		if err := w.AddOD(obj, src, tuples); err != nil {
			return err
		}
	}
	tupleBuf := make([]odcodec.Tuple, 0, 16)
	for id := m.baseN; id < m.span; id++ {
		if m.removed[id] {
			if err := stub(); err != nil {
				return err
			}
			continue
		}
		o := m.added[id]
		tupleBuf = tupleBuf[:0]
		for _, t := range o.Tuples {
			tupleBuf = append(tupleBuf, odcodec.Tuple{Value: t.Value, Name: t.Name, Type: t.Type})
		}
		if err := w.AddOD(o.Object, int32(o.Source), tupleBuf); err != nil {
			return err
		}
	}
	if err := s.exportLiveTypes(w, nil); err != nil {
		return err
	}
	tombstones := make([]int32, 0, len(m.removed))
	for id := range m.removed {
		tombstones = append(tombstones, id)
	}
	sortInt32s(tombstones)
	if err := w.Commit(odcodec.Meta{
		Fingerprint:  meta.Fingerprint,
		Theta:        s.theta,
		FilterValues: s.expandFilterValues(meta.FilterValues),
		DeltaSeq:     m.seq,
		Tombstones:   tombstones,
	}); err != nil {
		return err
	}
	odcodec.RemoveDeltas(s.dir, m.seq)
	r, err := odcodec.OpenWith(s.dir, s.opts.codecOptions())
	if err != nil {
		return fmt.Errorf("od: reopen own merged snapshot: %w", err)
	}
	old := s.r
	s.serveFrom(r) // re-derives size/stats/caches and seeds the tombstone overlay
	old.Close()
	return nil
}
