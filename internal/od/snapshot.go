package od

import (
	"fmt"
	"path/filepath"
	"sort"

	"repro/internal/od/odcodec"
)

// SnapshotMeta is the provenance a snapshot is stamped with when saved.
type SnapshotMeta struct {
	// Fingerprint identifies the corpus + detection configuration the
	// indexes were built from (internal/core computes it); warm starts
	// require an exact match.
	Fingerprint string
	// FilterValues optionally persists the Step 4 object-filter bounds
	// per OD so a warm start can skip recomputing them. May be nil.
	FilterValues []float64
}

// Save persists a finalized store into dir in the DiskStore segment
// format, so a later OpenDiskStore (or the pipeline's warm-start path)
// restores it without rebuilding any index. Every backend can be saved:
// a DiskStore that already lives in dir only has its manifest re-stamped
// with the meta; MemStore, ShardedStore and foreign-directory DiskStores
// are exported table by table. The snapshot commits atomically — its
// manifest is written last.
func Save(dir string, s Store, meta SnapshotMeta) error {
	if meta.FilterValues != nil && len(meta.FilterValues) != s.Size() {
		return fmt.Errorf("od: save: %d filter values for %d ODs", len(meta.FilterValues), s.Size())
	}
	if ds, ok := s.(*DiskStore); ok && sameDir(ds.dir, dir) {
		ds.mustBeFinal()
		return odcodec.UpdateMeta(dir, meta.Fingerprint, meta.FilterValues)
	}
	exp, ok := s.(interface {
		exportSnapshot(w *odcodec.Writer) error
	})
	if !ok {
		return fmt.Errorf("od: save: backend %T cannot be snapshotted", s)
	}
	w, err := odcodec.NewWriter(dir)
	if err != nil {
		return err
	}
	defer w.Abort()
	if err := exp.exportSnapshot(w); err != nil {
		return err
	}
	return w.Commit(odcodec.Meta{
		Fingerprint:  meta.Fingerprint,
		Theta:        s.Theta(),
		FilterValues: meta.FilterValues,
	})
}

func sameDir(a, b string) bool {
	if a == b {
		return true
	}
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	return err1 == nil && err2 == nil && aa == bb
}

// writeODs streams the OD records in ID order.
func writeODs(w *odcodec.Writer, ods []*OD) error {
	tuples := make([]odcodec.Tuple, 0, 16)
	for _, o := range ods {
		tuples = tuples[:0]
		for _, t := range o.Tuples {
			tuples = append(tuples, odcodec.Tuple{Value: t.Value, Name: t.Name, Type: t.Type})
		}
		if err := w.AddOD(o.Object, int32(o.Source), tuples); err != nil {
			return err
		}
	}
	return nil
}

// exportSnapshot writes the MemStore's tables: the typeIndex already
// holds each type's values sorted with aligned posting lists.
func (s *MemStore) exportSnapshot(w *odcodec.Writer) error {
	s.mustBeFinal()
	if err := writeODs(w, s.ods); err != nil {
		return err
	}
	names := make([]string, 0, len(s.types))
	for typ := range s.types {
		names = append(names, typ)
	}
	sort.Strings(names)
	for _, typ := range names {
		ti := s.types[typ]
		if err := w.BeginType(typ, ti.maxLen, ti.budget); err != nil {
			return err
		}
		for i, v := range ti.values {
			if err := w.AddValue(v, ti.objects[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// exportSnapshot merges the ShardedStore's per-shard value tables into
// the canonical single-table layout: values partition across shards, so
// concatenating and sorting each type's shard slices reproduces exactly
// the table MemStore would have built.
func (s *ShardedStore) exportSnapshot(w *odcodec.Writer) error {
	s.mustBeFinal()
	if err := writeODs(w, s.ods); err != nil {
		return err
	}
	type valueRow struct {
		value   string
		objects []int32
	}
	merged := map[string][]valueRow{}
	maxLen := map[string]int{}
	budget := map[string]int{}
	for i := range s.shards {
		for typ, ti := range s.shards[i].types {
			rows := merged[typ]
			for j, v := range ti.values {
				rows = append(rows, valueRow{value: v, objects: ti.objects[j]})
			}
			merged[typ] = rows
			if ti.maxLen > maxLen[typ] {
				maxLen[typ] = ti.maxLen
			}
			budget[typ] = ti.budget // global by construction, same in every shard
		}
	}
	names := make([]string, 0, len(merged))
	for typ := range merged {
		names = append(names, typ)
	}
	sort.Strings(names)
	for _, typ := range names {
		rows := merged[typ]
		sort.Slice(rows, func(i, j int) bool { return rows[i].value < rows[j].value })
		if err := w.BeginType(typ, maxLen[typ], budget[typ]); err != nil {
			return err
		}
		for _, row := range rows {
			if err := w.AddValue(row.value, row.objects); err != nil {
				return err
			}
		}
	}
	return nil
}

// exportSnapshot re-exports a disk store into another directory by
// streaming its own segments — used when the snapshot target differs
// from the store's directory.
func (s *DiskStore) exportSnapshot(w *odcodec.Writer) error {
	s.mustBeFinal()
	for id := int32(0); id < int32(s.size); id++ {
		obj, src, tuples, err := s.r.OD(id)
		if err != nil {
			return err
		}
		if err := w.AddOD(obj, src, tuples); err != nil {
			return err
		}
	}
	for _, tm := range s.r.Types() {
		if err := w.BeginType(tm.Name, tm.MaxLen, tm.Budget); err != nil {
			return err
		}
		err := s.r.ScanType(tm.Name, func(v string, runeLen int, postings func() ([]int32, error)) (bool, error) {
			ids, err := postings()
			if err != nil {
				return true, err
			}
			return false, w.AddValue(v, ids)
		})
		if err != nil {
			return err
		}
	}
	return nil
}
