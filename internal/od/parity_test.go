package od

import (
	"fmt"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/datagen"
)

// cdODs flattens generated FreeDB CDs into object descriptions, the same
// shape the pipeline's describe stage produces for Dataset 1.
func cdODs(n int, seed int64) []*OD {
	cds := datagen.FreeDB(n, seed)
	out := make([]*OD, 0, len(cds))
	for i, cd := range cds {
		o := &OD{Object: fmt.Sprintf("/freedb/disc[%d]", i+1)}
		add := func(value, name, typ string) {
			o.Tuples = append(o.Tuples, Tuple{Value: value, Name: name, Type: typ})
		}
		add(cd.DID, "/freedb/disc/did", "DID")
		add(cd.Artist, "/freedb/disc/artist", "ARTIST")
		add(cd.Title, "/freedb/disc/dtitle", "DTITLE")
		add(cd.Genre, "/freedb/disc/genre", "GENRE")
		add(strconv.Itoa(cd.Year), "/freedb/disc/year", "YEAR")
		for _, tr := range cd.Tracks {
			add(tr, "/freedb/disc/tracks/title", "TRACK")
		}
		out = append(out, o)
	}
	return out
}

// movieODs flattens generated Dataset 2 movies likewise.
func movieODs(n int, seed int64) []*OD {
	movies := datagen.Movies(n, seed)
	out := make([]*OD, 0, len(movies))
	for i, m := range movies {
		o := &OD{Object: fmt.Sprintf("/movies/movie[%d]", i+1)}
		add := func(value, name, typ string) {
			o.Tuples = append(o.Tuples, Tuple{Value: value, Name: name, Type: typ})
		}
		add(m.Title, "/movies/movie/title", "TITLE")
		add(m.GermanTitle, "/movies/movie/german", "TITLE")
		add(strconv.Itoa(m.Year), "/movies/movie/year", "YEAR")
		for _, g := range m.Genres {
			add(g, "/movies/movie/genre", "GENRE")
		}
		for _, p := range m.People {
			add(p.First+" "+p.Last, "/movies/movie/person", "PERSON")
		}
		out = append(out, o)
	}
	return out
}

// buildBoth populates a MemStore and a ShardedStore with copies of the
// same ODs and finalizes both at theta.
func buildBoth(t *testing.T, ods []*OD, shards int, theta float64) (*MemStore, *ShardedStore) {
	t.Helper()
	mem := NewMemStore()
	sh := NewShardedStore(shards)
	for _, o := range ods {
		cp1, cp2 := *o, *o
		mem.Add(&cp1)
		sh.Add(&cp2)
	}
	mem.Finalize(theta)
	sh.Finalize(theta)
	return mem, sh
}

// TestShardedStoreParity asserts that ShardedStore answers every Store
// query bit-identically to MemStore on the generated movie and CD
// datasets, for 1, 4 and 16 shards.
func TestShardedStoreParity(t *testing.T) {
	datasets := []struct {
		name  string
		ods   []*OD
		theta float64
	}{
		{"cds", cdODs(120, 2005), 0.15},
		{"cds-coarse", cdODs(80, 7), 0.55},
		{"movies", movieODs(120, 11), 0.15},
	}
	for _, ds := range datasets {
		for _, shards := range []int{1, 4, 16} {
			t.Run(fmt.Sprintf("%s/shards=%d", ds.name, shards), func(t *testing.T) {
				mem, sh := buildBoth(t, ds.ods, shards, ds.theta)

				if mem.Size() != sh.Size() || mem.Theta() != sh.Theta() {
					t.Fatalf("size/theta diverge: %d/%v vs %d/%v",
						mem.Size(), mem.Theta(), sh.Size(), sh.Theta())
				}
				if !reflect.DeepEqual(mem.Stats(), sh.Stats()) {
					t.Errorf("Stats diverge:\nmem:     %+v\nsharded: %+v", mem.Stats(), sh.Stats())
				}
				for id := int32(0); id < int32(mem.Size()); id++ {
					nm, ns := mem.Neighbors(id), sh.Neighbors(id)
					if !equalIDs(nm, ns) {
						t.Fatalf("Neighbors(%d) diverge: %v vs %v", id, nm, ns)
					}
				}
				for _, o := range mem.ODs() {
					for _, tup := range o.NonEmptyTuples() {
						em, es := mem.ObjectsWithExact(tup), sh.ObjectsWithExact(tup)
						if !equalIDs(em, es) {
							t.Fatalf("ObjectsWithExact(%v) diverge: %v vs %v", tup, em, es)
						}
						vm, vs := mem.SimilarValues(tup), sh.SimilarValues(tup)
						if !equalMatches(vm, vs) {
							t.Fatalf("SimilarValues(%v) diverge:\nmem:     %v\nsharded: %v", tup, vm, vs)
						}
						if gm, gs := mem.SoftIDFSingle(tup), sh.SoftIDFSingle(tup); gm != gs {
							t.Fatalf("SoftIDFSingle(%v) diverge: %v vs %v", tup, gm, gs)
						}
						// softIDF across every similar partner value, the
						// pairs the similarity measure actually requests.
						for _, m := range vm {
							other := Tuple{Value: m.Value, Type: tup.Type}
							if gm, gs := mem.SoftIDF(tup, other), sh.SoftIDF(tup, other); gm != gs {
								t.Fatalf("SoftIDF(%v, %v) diverge: %v vs %v", tup, other, gm, gs)
							}
						}
					}
				}
			})
		}
	}
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalMatches(a, b []ValueMatch) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Value != b[i].Value || a[i].Dist != b[i].Dist || !equalIDs(a[i].Objects, b[i].Objects) {
			return false
		}
	}
	return true
}
