package od

import (
	"fmt"

	"repro/internal/od/odcodec"
)

// odDirectory is the coordinator's full-object directory behind
// PartitionedStore: ODs by ID, nil at removed slots. Two shapes exist —
// memDirectory keeps every object on the heap (fresh builds, default at
// open), diskDirectory serves them from the coordinator snapshot's own
// segments through a bounded LRU (OpenOptions.SpillODs), so coordinator
// heap stays bounded by the cache instead of growing with the corpus.
// Mutation calls (append, remove) are serialized by the MutableStore
// contract; od and span must be safe for concurrent readers.
type odDirectory interface {
	// od returns the object at id, nil when removed. id must be in
	// [0, span).
	od(id int32) *OD
	// append adds the next object; its ID must equal span() at the call.
	append(o *OD)
	// remove marks id's slot nil.
	remove(id int32)
	// span is the exclusive upper ID bound.
	span() int32
	// all materializes the full directory in ID order, nil at removed
	// slots. On a spilled directory this decodes every record — callers
	// that need a few objects should use od.
	all() []*OD
}

// memDirectory is the heap-resident directory: a plain slice, exactly
// the `ods []*OD` the coordinator held before spilling existed.
type memDirectory struct {
	ods []*OD
}

func (d *memDirectory) od(id int32) *OD { return d.ods[id] }
func (d *memDirectory) append(o *OD)    { d.ods = append(d.ods, o) }
func (d *memDirectory) remove(id int32) { d.ods[id] = nil }
func (d *memDirectory) span() int32     { return int32(len(d.ods)) }
func (d *memDirectory) all() []*OD      { return d.ods }

// diskDirectory serves the coordinator directory from the coordinator
// snapshot's segment reader: base records decode on demand through a
// fixed-capacity cache (DiskStore's OD-cache size), post-open additions
// and removals overlay in memory. The overlay stays small between
// snapshots — it is exactly the mutation delta — so coordinator heap is
// bounded by cache + delta instead of the corpus.
type diskDirectory struct {
	r     *odcodec.Reader
	baseN int32
	cache *shardedLRU[int32, *OD]

	// Overlay: written only inside mutation calls (serialized against
	// queries by the MutableStore contract), read lock-free by queries —
	// the same discipline DiskStore's overlay uses.
	added   map[int32]*OD
	removed map[int32]bool
	spanN   int32
}

func newDiskDirectory(r *odcodec.Reader, baseN int32) *diskDirectory {
	return &diskDirectory{
		r:     r,
		baseN: baseN,
		cache: newShardedLRU[int32, *OD](diskODCacheSize, hashID),
		spanN: baseN,
	}
}

func (d *diskDirectory) od(id int32) *OD {
	if d.removed[id] {
		return nil
	}
	if id >= d.baseN {
		return d.added[id]
	}
	if o, ok := d.cache.get(id); ok {
		return o
	}
	obj, src, tuples, err := d.r.OD(id)
	if err != nil {
		panic(fmt.Sprintf("od: coordinator directory: %v", err))
	}
	o := &OD{ID: id, Object: obj, Source: int(src), Tuples: make([]Tuple, len(tuples))}
	for i, t := range tuples {
		o.Tuples[i] = Tuple{Value: t.Value, Name: t.Name, Type: t.Type}
	}
	d.cache.put(id, o)
	return o
}

func (d *diskDirectory) append(o *OD) {
	if d.added == nil {
		d.added = make(map[int32]*OD)
	}
	d.added[d.spanN] = o
	d.spanN++
}

func (d *diskDirectory) remove(id int32) {
	if d.removed == nil {
		d.removed = make(map[int32]bool)
	}
	d.removed[id] = true
	delete(d.added, id)
}

func (d *diskDirectory) span() int32 { return d.spanN }

// all materializes the whole directory; not cached, so repeated calls
// re-decode — the pipeline reads od(id), and the callers that want the
// full set (diagnostics, SavePartitioned) want it once.
func (d *diskDirectory) all() []*OD {
	out := make([]*OD, d.spanN)
	for id := int32(0); id < d.spanN; id++ {
		out[id] = d.od(id)
	}
	return out
}

func (d *diskDirectory) close() error { return d.r.Close() }
