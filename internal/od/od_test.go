package od

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/strdist"
)

// buildStore assembles a small store with the paper's three movies
// (Table 2).
func buildStore(t *testing.T) *MemStore {
	t.Helper()
	s := NewMemStore()
	s.Add(&OD{Object: "/moviedoc/movie[1]", Tuples: []Tuple{
		{Value: "The Matrix", Name: "/moviedoc/movie/title", Type: "TITLE"},
		{Value: "1999", Name: "/moviedoc/movie/year", Type: "YEAR"},
		{Value: "Keanu Reeves", Name: "/moviedoc/movie/actor/name", Type: "ACTORNAME"},
		{Value: "L. Fishburne", Name: "/moviedoc/movie/actor/name", Type: "ACTORNAME"},
	}})
	s.Add(&OD{Object: "/moviedoc/movie[2]", Tuples: []Tuple{
		{Value: "Matrix", Name: "/moviedoc/movie/title", Type: "TITLE"},
		{Value: "1999", Name: "/moviedoc/movie/year", Type: "YEAR"},
		{Value: "Keanu Reeves", Name: "/moviedoc/movie/actor/name", Type: "ACTORNAME"},
	}})
	s.Add(&OD{Object: "/moviedoc/movie[3]", Tuples: []Tuple{
		{Value: "Signs", Name: "/moviedoc/movie/title", Type: "TITLE"},
		{Value: "2002", Name: "/moviedoc/movie/year", Type: "YEAR"},
		{Value: "Mel Gibson", Name: "/moviedoc/movie/actor/name", Type: "ACTORNAME"},
	}})
	s.Finalize(0.55)
	return s
}

func TestStoreBasics(t *testing.T) {
	s := buildStore(t)
	if s.Size() != 3 {
		t.Fatalf("size = %d", s.Size())
	}
	if s.ODs()[0].ID != 0 || s.ODs()[2].ID != 2 {
		t.Error("ids not assigned sequentially")
	}
	if s.Theta() != 0.55 {
		t.Errorf("theta = %v", s.Theta())
	}
}

func TestObjectsWithExact(t *testing.T) {
	s := buildStore(t)
	year := Tuple{Value: "1999", Name: "/moviedoc/movie/year", Type: "YEAR"}
	got := s.ObjectsWithExact(year)
	if !reflect.DeepEqual(got, []int32{0, 1}) {
		t.Errorf("objects with 1999 = %v", got)
	}
	missing := Tuple{Value: "1984", Type: "YEAR"}
	if got := s.ObjectsWithExact(missing); got != nil {
		t.Errorf("missing value returned %v", got)
	}
	// same value under a different type is a different key
	other := Tuple{Value: "1999", Type: "TITLE"}
	if got := s.ObjectsWithExact(other); got != nil {
		t.Errorf("cross-type lookup returned %v", got)
	}
}

func TestObjectCountsOncePerKey(t *testing.T) {
	s := NewMemStore()
	s.Add(&OD{Tuples: []Tuple{
		{Value: "x", Type: "T"},
		{Value: "x", Type: "T"}, // duplicate tuple in one object
	}})
	s.Add(&OD{Tuples: []Tuple{{Value: "x", Type: "T"}}})
	s.Finalize(0.15)
	got := s.ObjectsWithExact(Tuple{Value: "x", Type: "T"})
	if !reflect.DeepEqual(got, []int32{0, 1}) {
		t.Errorf("occurrences = %v, want [0 1]", got)
	}
}

func TestSimilarValues(t *testing.T) {
	s := buildStore(t)
	// With theta 0.55, "The Matrix" and "Matrix" are similar (ned = 0.4).
	got := s.SimilarValues(Tuple{Value: "The Matrix", Type: "TITLE"})
	var vals []string
	for _, m := range got {
		vals = append(vals, m.Value)
	}
	if !reflect.DeepEqual(vals, []string{"The Matrix", "Matrix"}) {
		t.Errorf("similar to The Matrix = %v", vals)
	}
	if got[0].Dist != 0 {
		t.Errorf("self distance = %v", got[0].Dist)
	}
	if math.Abs(got[1].Dist-0.4) > 1e-9 {
		t.Errorf("Matrix distance = %v, want 0.4", got[1].Dist)
	}
}

func TestSimilarValuesEmptyAndUnknownType(t *testing.T) {
	s := buildStore(t)
	if got := s.SimilarValues(Tuple{Value: "", Type: "TITLE"}); got != nil {
		t.Errorf("empty value matched %v", got)
	}
	if got := s.SimilarValues(Tuple{Value: "x", Type: "NOPE"}); got != nil {
		t.Errorf("unknown type matched %v", got)
	}
}

func TestSoftIDF(t *testing.T) {
	s := buildStore(t)
	year99 := Tuple{Value: "1999", Type: "YEAR"}
	// 1999 occurs in 2 of 3 objects: idf = ln(3/2)
	if got, want := s.SoftIDFSingle(year99), math.Log(1.5); math.Abs(got-want) > 1e-12 {
		t.Errorf("softIDF(1999) = %v, want %v", got, want)
	}
	// pair (The Matrix, Matrix): occurs in objects {0} ∪ {1} -> ln(3/2)
	a := Tuple{Value: "The Matrix", Type: "TITLE"}
	b := Tuple{Value: "Matrix", Type: "TITLE"}
	if got, want := s.SoftIDF(a, b), math.Log(1.5); math.Abs(got-want) > 1e-12 {
		t.Errorf("softIDF(pair) = %v, want %v", got, want)
	}
	// unique tuple: ln(3/1)
	uniq := Tuple{Value: "Signs", Type: "TITLE"}
	if got, want := s.SoftIDFSingle(uniq), math.Log(3); math.Abs(got-want) > 1e-12 {
		t.Errorf("softIDF(Signs) = %v, want %v", got, want)
	}
}

func TestSoftIDFPhantomTuple(t *testing.T) {
	s := buildStore(t)
	ghost := Tuple{Value: "never seen", Type: "TITLE"}
	got := s.SoftIDF(ghost, ghost)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("phantom softIDF = %v", got)
	}
	if want := math.Log(3); math.Abs(got-want) > 1e-12 {
		t.Errorf("phantom softIDF = %v, want %v", got, want)
	}
}

func TestNeighbors(t *testing.T) {
	s := buildStore(t)
	// movie 1 shares year with movie 2 and (with theta .55) title too.
	got := s.Neighbors(0)
	if !reflect.DeepEqual(got, []int32{1}) {
		t.Errorf("neighbors(0) = %v", got)
	}
	// movie 3 shares nothing similar.
	if got := s.Neighbors(2); len(got) != 0 {
		t.Errorf("neighbors(2) = %v", got)
	}
}

func TestNonEmptyTuples(t *testing.T) {
	o := &OD{Tuples: []Tuple{
		{Value: "x", Type: "T"},
		{Value: "", Type: "T"},
		{Value: "y", Type: "T"},
	}}
	got := o.NonEmptyTuples()
	if len(got) != 2 || got[0].Value != "x" || got[1].Value != "y" {
		t.Errorf("NonEmptyTuples = %v", got)
	}
}

func TestStatsAndIndexChoice(t *testing.T) {
	s := NewMemStore()
	// short values -> small budget -> neighbor index
	for _, v := range []string{"0001", "0002", "0003"} {
		s.Add(&OD{Tuples: []Tuple{{Value: v, Type: "ID"}}})
	}
	// long values -> budget > 2 -> scan fallback
	long1 := "this is a very long track title indeed, part one"
	long2 := "this is a very long track title indeed, part two"
	s.Add(&OD{Tuples: []Tuple{{Value: long1, Type: "LONG"}}})
	s.Add(&OD{Tuples: []Tuple{{Value: long2, Type: "LONG"}}})
	s.Finalize(0.15)

	stats := s.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats = %v", stats)
	}
	byType := map[string]TypeStats{}
	for _, st := range stats {
		byType[st.Type] = st
	}
	if !byType["ID"].Indexed {
		t.Error("ID type should use the neighbor index")
	}
	if byType["LONG"].Indexed {
		t.Error("LONG type should use the scan fallback")
	}
	// both paths find the similar pair
	got := s.SimilarValues(Tuple{Value: long1, Type: "LONG"})
	if len(got) != 2 {
		t.Errorf("scan path found %d matches, want 2 (self + other)", len(got))
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	s := NewMemStore()
	s.Add(&OD{})
	assertPanics("query before finalize", func() { s.ObjectsWithExact(Tuple{}) })
	s.Finalize(0.15)
	assertPanics("double finalize", func() { s.Finalize(0.15) })
	assertPanics("add after finalize", func() { s.Add(&OD{}) })
}

// Property: SimilarValues agrees with a brute-force scan over all distinct
// values, for both index paths.
func TestQuickSimilarValuesComplete(t *testing.T) {
	f := func(seed int64, thetaPick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		thetas := []float64{0.15, 0.3, 0.55}
		theta := thetas[int(thetaPick)%len(thetas)]
		s := NewMemStore()
		var values []string
		for i := 0; i < 25; i++ {
			v := randValue(rng)
			values = append(values, v)
			s.Add(&OD{Tuples: []Tuple{{Value: v, Type: "T"}}})
		}
		s.Finalize(theta)
		q := Tuple{Value: values[rng.Intn(len(values))], Type: "T"}
		got := map[string]bool{}
		for _, m := range s.SimilarValues(q) {
			got[m.Value] = true
		}
		want := map[string]bool{}
		for _, v := range values {
			if strdist.NormalizedBelow(q.Value, v, theta) {
				want[v] = true
			}
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: union size is symmetric and bounded by the store size in
// softIDF (idf >= 0).
func TestQuickSoftIDFNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewMemStore()
		var tuples []Tuple
		for i := 0; i < 20; i++ {
			tp := Tuple{Value: randValue(rng), Type: "T"}
			tuples = append(tuples, tp)
			s.Add(&OD{Tuples: []Tuple{tp}})
		}
		s.Finalize(0.3)
		a := tuples[rng.Intn(len(tuples))]
		b := tuples[rng.Intn(len(tuples))]
		ab, ba := s.SoftIDF(a, b), s.SoftIDF(b, a)
		return ab >= 0 && math.Abs(ab-ba) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func randValue(rng *rand.Rand) string {
	letters := "abcxyz"
	n := rng.Intn(8) + 1
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}
