// Package xpath implements the XPath subset DogmatiX needs for its three
// query kinds: candidate queries (absolute paths selecting the objects to
// compare), description queries (relative paths σ selecting description
// elements), and the positionally qualified paths written into the Fig. 3
// dupcluster output.
//
// Supported grammar:
//
//	path       := '$doc'? ('/' | '//')? step (('/' | '//') step)* | '.'
//	step       := '.' | '..' | name | '*' , each followed by predicates
//	predicate  := '[' number ']' | '[' name '=' quoted ']'
//
// Axes: child (default), descendant-or-self ('//'), parent ('..'),
// self ('.'). The '$doc' variable prefix from the paper's mapping notation
// is accepted and ignored.
package xpath

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/xmltree"
)

// Axis identifies the navigation axis of a step.
type Axis int

const (
	AxisChild Axis = iota
	AxisDescendantOrSelf
	AxisParent
	AxisSelf
)

// PredKind distinguishes the two supported predicate forms.
type PredKind int

const (
	PredPosition PredKind = iota // [3]
	PredChildEq                  // [name='value']
)

// Predicate filters the node set produced by a step.
type Predicate struct {
	Kind  PredKind
	Pos   int    // for PredPosition (1-based)
	Child string // for PredChildEq
	Value string // for PredChildEq
}

// Step is one location step.
type Step struct {
	Axis  Axis
	Name  string // element name, or "*"; ignored for parent/self axes
	Preds []Predicate
}

// Path is a parsed location path.
type Path struct {
	Absolute bool
	Steps    []Step
	raw      string
}

// Parse parses an XPath expression in the supported subset.
func Parse(expr string) (*Path, error) {
	raw := expr
	expr = strings.TrimSpace(expr)
	expr = strings.TrimPrefix(expr, "$doc")
	if expr == "" {
		return nil, fmt.Errorf("xpath: empty expression")
	}
	p := &Path{raw: raw}
	i := 0
	if strings.HasPrefix(expr, "//") {
		p.Absolute = true
		i = 2
		// the descendant step is encoded on the first step below
		rest, err := parseSteps(expr[i:], true)
		if err != nil {
			return nil, fmt.Errorf("xpath: %q: %w", raw, err)
		}
		p.Steps = rest
		return p, nil
	}
	if strings.HasPrefix(expr, "/") {
		p.Absolute = true
		i = 1
	}
	steps, err := parseSteps(expr[i:], false)
	if err != nil {
		return nil, fmt.Errorf("xpath: %q: %w", raw, err)
	}
	p.Steps = steps
	if p.Absolute && len(p.Steps) == 0 {
		return nil, fmt.Errorf("xpath: %q: absolute path needs at least one step", raw)
	}
	return p, nil
}

// MustParse parses expr and panics on error. For fixtures and tests.
func MustParse(expr string) *Path {
	p, err := Parse(expr)
	if err != nil {
		panic(err)
	}
	return p
}

func parseSteps(s string, firstDescendant bool) ([]Step, error) {
	var steps []Step
	descendant := firstDescendant
	for len(s) > 0 {
		// split off one step token up to the next unbracketed '/'
		depth := 0
		end := len(s)
		for j := 0; j < len(s); j++ {
			switch s[j] {
			case '[':
				depth++
			case ']':
				depth--
			case '/':
				if depth == 0 {
					end = j
					goto found
				}
			}
		}
	found:
		tok := s[:end]
		step, err := parseStep(tok, descendant)
		if err != nil {
			return nil, err
		}
		steps = append(steps, step)
		descendant = false
		if end == len(s) {
			break
		}
		s = s[end+1:]
		if strings.HasPrefix(s, "/") {
			descendant = true
			s = s[1:]
			if s == "" {
				return nil, fmt.Errorf("trailing //")
			}
		} else if s == "" {
			return nil, fmt.Errorf("trailing /")
		}
	}
	return steps, nil
}

func parseStep(tok string, descendant bool) (Step, error) {
	st := Step{Axis: AxisChild}
	if descendant {
		st.Axis = AxisDescendantOrSelf
	}
	// predicates
	name := tok
	for {
		open := strings.IndexByte(name, '[')
		if open < 0 {
			break
		}
		if !strings.HasSuffix(name, "]") {
			return Step{}, fmt.Errorf("unterminated predicate in %q", tok)
		}
		// find matching first predicate
		closeIdx := strings.IndexByte(name[open:], ']') + open
		predSrc := name[open+1 : closeIdx]
		pred, err := parsePredicate(predSrc)
		if err != nil {
			return Step{}, err
		}
		st.Preds = append(st.Preds, pred)
		name = name[:open] + name[closeIdx+1:]
	}
	switch name {
	case "":
		return Step{}, fmt.Errorf("empty step in %q", tok)
	case ".":
		if descendant {
			st.Axis = AxisDescendantOrSelf
			st.Name = "*"
			return st, nil
		}
		st.Axis = AxisSelf
	case "..":
		st.Axis = AxisParent
	default:
		st.Name = name
	}
	return st, nil
}

func parsePredicate(src string) (Predicate, error) {
	src = strings.TrimSpace(src)
	if src == "" {
		return Predicate{}, fmt.Errorf("empty predicate")
	}
	if n, err := strconv.Atoi(src); err == nil {
		if n < 1 {
			return Predicate{}, fmt.Errorf("position predicate must be >= 1, got %d", n)
		}
		return Predicate{Kind: PredPosition, Pos: n}, nil
	}
	eq := strings.IndexByte(src, '=')
	if eq < 0 {
		return Predicate{}, fmt.Errorf("unsupported predicate %q", src)
	}
	child := strings.TrimSpace(src[:eq])
	val := strings.TrimSpace(src[eq+1:])
	if len(val) < 2 || (val[0] != '\'' && val[0] != '"') || val[len(val)-1] != val[0] {
		return Predicate{}, fmt.Errorf("predicate value must be quoted in %q", src)
	}
	return Predicate{Kind: PredChildEq, Child: child, Value: val[1 : len(val)-1]}, nil
}

// String renders the path in canonical form.
func (p *Path) String() string {
	var sb strings.Builder
	if p.Absolute {
		sb.WriteByte('/')
	}
	for i, st := range p.Steps {
		if i > 0 {
			sb.WriteByte('/')
		}
		if st.Axis == AxisDescendantOrSelf {
			if i > 0 {
				sb.WriteByte('/')
			} else if p.Absolute {
				sb.WriteByte('/')
			}
		}
		switch st.Axis {
		case AxisParent:
			sb.WriteString("..")
		case AxisSelf:
			sb.WriteByte('.')
		default:
			sb.WriteString(st.Name)
		}
		for _, pr := range st.Preds {
			switch pr.Kind {
			case PredPosition:
				fmt.Fprintf(&sb, "[%d]", pr.Pos)
			case PredChildEq:
				fmt.Fprintf(&sb, "[%s='%s']", pr.Child, pr.Value)
			}
		}
	}
	s := sb.String()
	if !p.Absolute && len(p.Steps) > 0 && p.Steps[0].Axis == AxisSelf && len(p.Steps) == 1 {
		return "."
	}
	return s
}

// Eval evaluates the path. Absolute paths are evaluated against the
// document root of ctx; relative paths against ctx itself. The result is
// in document order without duplicates.
func (p *Path) Eval(ctx *xmltree.Node) []*xmltree.Node {
	if ctx == nil {
		return nil
	}
	var current []*xmltree.Node
	if p.Absolute {
		root := ctx.Root()
		// Virtual document node: the first child-axis step matches the root
		// element by name.
		first := p.Steps[0]
		switch first.Axis {
		case AxisChild:
			if nameMatches(first.Name, root.Name) && predsMatch(first.Preds, root, 1) {
				current = []*xmltree.Node{root}
			}
		case AxisDescendantOrSelf:
			for _, n := range collectSelfAndDescendants(root) {
				if nameMatches(first.Name, n.Name) {
					current = append(current, n)
				}
			}
			current = filterPreds(current, first.Preds)
		default:
			return nil
		}
		return evalSteps(current, p.Steps[1:])
	}
	current = []*xmltree.Node{ctx}
	return evalSteps(current, p.Steps)
}

func evalSteps(current []*xmltree.Node, steps []Step) []*xmltree.Node {
	for _, st := range steps {
		var next []*xmltree.Node
		seen := map[*xmltree.Node]bool{}
		add := func(n *xmltree.Node) {
			if !seen[n] {
				seen[n] = true
				next = append(next, n)
			}
		}
		for _, ctx := range current {
			switch st.Axis {
			case AxisChild:
				var local []*xmltree.Node
				for _, c := range ctx.Children {
					if nameMatches(st.Name, c.Name) {
						local = append(local, c)
					}
				}
				for _, n := range filterPreds(local, st.Preds) {
					add(n)
				}
			case AxisDescendantOrSelf:
				var local []*xmltree.Node
				for _, n := range collectSelfAndDescendants(ctx) {
					if nameMatches(st.Name, n.Name) {
						local = append(local, n)
					}
				}
				for _, n := range filterPreds(local, st.Preds) {
					add(n)
				}
			case AxisParent:
				if ctx.Parent != nil {
					add(ctx.Parent)
				}
			case AxisSelf:
				if predsMatch(st.Preds, ctx, 1) {
					add(ctx)
				}
			}
		}
		current = next
		if len(current) == 0 {
			return nil
		}
	}
	return current
}

func collectSelfAndDescendants(n *xmltree.Node) []*xmltree.Node {
	out := []*xmltree.Node{n}
	out = append(out, n.Descendants()...)
	return out
}

func nameMatches(pattern, name string) bool {
	return pattern == "*" || pattern == name
}

func filterPreds(nodes []*xmltree.Node, preds []Predicate) []*xmltree.Node {
	for _, pr := range preds {
		var kept []*xmltree.Node
		for i, n := range nodes {
			if predMatches(pr, n, i+1) {
				kept = append(kept, n)
			}
		}
		nodes = kept
	}
	return nodes
}

func predsMatch(preds []Predicate, n *xmltree.Node, pos int) bool {
	for _, pr := range preds {
		if !predMatches(pr, n, pos) {
			return false
		}
	}
	return true
}

func predMatches(pr Predicate, n *xmltree.Node, pos int) bool {
	switch pr.Kind {
	case PredPosition:
		return pos == pr.Pos
	case PredChildEq:
		for _, c := range n.Children {
			if c.Name == pr.Child && c.Text == pr.Value {
				return true
			}
		}
		return false
	}
	return false
}

// EvalAll evaluates several paths against the same context and returns the
// union of results in first-seen order.
func EvalAll(paths []*Path, ctx *xmltree.Node) []*xmltree.Node {
	var out []*xmltree.Node
	seen := map[*xmltree.Node]bool{}
	for _, p := range paths {
		for _, n := range p.Eval(ctx) {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out
}
