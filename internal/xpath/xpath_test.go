package xpath

import (
	"reflect"
	"testing"

	"repro/internal/xmltree"
)

const doc = `<moviedoc>
  <movie>
    <title>The Matrix</title>
    <year>1999</year>
    <actor><name>Keanu Reeves</name><role>Neo</role></actor>
    <actor><name>L. Fishburne</name><role>Morpheus</role></actor>
  </movie>
  <movie>
    <title>Matrix</title>
    <year>1999</year>
    <actor><name>Keanu Reeves</name><role>The One</role></actor>
  </movie>
  <extra><title>not a movie title</title></extra>
</moviedoc>`

func ctx(t *testing.T) *xmltree.Node {
	t.Helper()
	d, err := xmltree.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	return d.Root
}

func texts(nodes []*xmltree.Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Text
	}
	return out
}

func names(nodes []*xmltree.Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Name
	}
	return out
}

func TestAbsoluteChildPath(t *testing.T) {
	root := ctx(t)
	got := MustParse("/moviedoc/movie/title").Eval(root)
	if want := []string{"The Matrix", "Matrix"}; !reflect.DeepEqual(texts(got), want) {
		t.Errorf("titles = %v, want %v", texts(got), want)
	}
}

func TestDollarDocPrefix(t *testing.T) {
	root := ctx(t)
	got := MustParse("$doc/moviedoc/movie").Eval(root)
	if len(got) != 2 {
		t.Errorf("movies = %d, want 2", len(got))
	}
}

func TestRelativePath(t *testing.T) {
	root := ctx(t)
	movie := root.ChildrenNamed("movie")[0]
	got := MustParse("./actor/name").Eval(movie)
	if want := []string{"Keanu Reeves", "L. Fishburne"}; !reflect.DeepEqual(texts(got), want) {
		t.Errorf("names = %v, want %v", texts(got), want)
	}
	// without the leading ./ as well
	got2 := MustParse("actor/name").Eval(movie)
	if !reflect.DeepEqual(texts(got2), texts(got)) {
		t.Errorf("actor/name = %v", texts(got2))
	}
}

func TestSelfPath(t *testing.T) {
	root := ctx(t)
	movie := root.ChildrenNamed("movie")[1]
	got := MustParse(".").Eval(movie)
	if len(got) != 1 || got[0] != movie {
		t.Errorf("self = %v", names(got))
	}
}

func TestParentPath(t *testing.T) {
	root := ctx(t)
	name := root.ChildrenNamed("movie")[0].ChildrenNamed("actor")[0].Child("name")
	got := MustParse("..").Eval(name)
	if len(got) != 1 || got[0].Name != "actor" {
		t.Errorf("parent = %v", names(got))
	}
	got = MustParse("../..").Eval(name)
	if len(got) != 1 || got[0].Name != "movie" {
		t.Errorf("grandparent = %v", names(got))
	}
	got = MustParse("../../title").Eval(name)
	if len(got) != 1 || got[0].Text != "The Matrix" {
		t.Errorf("../../title = %v", texts(got))
	}
}

func TestDescendantPath(t *testing.T) {
	root := ctx(t)
	got := MustParse("//title").Eval(root)
	want := []string{"The Matrix", "Matrix", "not a movie title"}
	if !reflect.DeepEqual(texts(got), want) {
		t.Errorf("//title = %v, want %v", texts(got), want)
	}
	got = MustParse("/moviedoc/movie//name").Eval(root)
	if len(got) != 3 {
		t.Errorf("movie//name = %v", texts(got))
	}
}

func TestWildcard(t *testing.T) {
	root := ctx(t)
	movie := root.ChildrenNamed("movie")[0]
	got := MustParse("./*").Eval(movie)
	if want := []string{"title", "year", "actor", "actor"}; !reflect.DeepEqual(names(got), want) {
		t.Errorf("* = %v", names(got))
	}
}

func TestPositionPredicate(t *testing.T) {
	root := ctx(t)
	got := MustParse("/moviedoc/movie[2]/actor[1]/name").Eval(root)
	if len(got) != 1 || got[0].Text != "Keanu Reeves" {
		t.Errorf("positional = %v", texts(got))
	}
	got = MustParse("/moviedoc/movie[1]/actor[2]/role").Eval(root)
	if len(got) != 1 || got[0].Text != "Morpheus" {
		t.Errorf("positional = %v", texts(got))
	}
	if got := MustParse("/moviedoc/movie[9]").Eval(root); len(got) != 0 {
		t.Errorf("out of range position matched %v", names(got))
	}
}

func TestChildEqualityPredicate(t *testing.T) {
	root := ctx(t)
	got := MustParse(`/moviedoc/movie[title='Matrix']/actor/role`).Eval(root)
	if len(got) != 1 || got[0].Text != "The One" {
		t.Errorf("filtered = %v", texts(got))
	}
	got = MustParse(`/moviedoc/movie[title="Signs"]`).Eval(root)
	if len(got) != 0 {
		t.Errorf("no-match filter returned %v", len(got))
	}
}

func TestRootMismatch(t *testing.T) {
	root := ctx(t)
	if got := MustParse("/wrongroot/movie").Eval(root); len(got) != 0 {
		t.Errorf("wrong root matched %d nodes", len(got))
	}
}

func TestEvalFromDescendantUsesDocumentRoot(t *testing.T) {
	root := ctx(t)
	inner := root.ChildrenNamed("movie")[0].Child("title")
	got := MustParse("/moviedoc/movie").Eval(inner)
	if len(got) != 2 {
		t.Errorf("absolute from inner node = %d, want 2", len(got))
	}
}

func TestRoundTripString(t *testing.T) {
	exprs := []string{
		"/moviedoc/movie/title",
		"/moviedoc/movie[2]/actor[1]/name",
		"./actor/name",
		"//title",
		"..",
		"../..",
		".",
		"/a/*/c",
		"/a/b[x='1']",
	}
	for _, e := range exprs {
		p := MustParse(e)
		p2, err := Parse(p.String())
		if err != nil {
			t.Errorf("re-parse of %q -> %q failed: %v", e, p.String(), err)
			continue
		}
		if p2.String() != p.String() {
			t.Errorf("round trip %q -> %q -> %q", e, p.String(), p2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"/",
		"a//",
		"a/",
		"a[",
		"a[]",
		"a[0]",
		"a[x=unquoted]",
		"a[?]",
	}
	for _, e := range bad {
		if _, err := Parse(e); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", e)
		}
	}
}

func TestEvalAllDeduplicates(t *testing.T) {
	root := ctx(t)
	movie := root.ChildrenNamed("movie")[0]
	paths := []*Path{MustParse("./title"), MustParse("./*"), MustParse("./year")}
	got := EvalAll(paths, movie)
	if len(got) != 4 { // title, year, actor, actor
		t.Errorf("EvalAll = %v", names(got))
	}
}

func TestNodePathResolvesBack(t *testing.T) {
	// xmltree.Node.Path() output must be evaluatable by this engine and
	// resolve to exactly the original node.
	root := ctx(t)
	var all []*xmltree.Node
	root.Walk(func(n *xmltree.Node) bool { all = append(all, n); return true })
	for _, n := range all {
		p := MustParse(n.Path())
		got := p.Eval(root)
		if len(got) != 1 || got[0] != n {
			t.Errorf("Path %q resolved to %d nodes", n.Path(), len(got))
		}
	}
}

func TestEvalNilContext(t *testing.T) {
	if got := MustParse("/a").Eval(nil); got != nil {
		t.Errorf("nil ctx = %v", got)
	}
}
