// Package dirty reimplements the "XML Dirty Data Generator" the paper used
// to derive Dataset 1 (Sec. 6.1): given an XML document and a candidate
// path, it duplicates a configurable percentage of the candidate elements
// and corrupts the copies with typographical errors, missing data, and
// synonym (contradictory) replacements.
//
// Typos are 1-3 character edits, so a share of corrupted values leaves the
// θtuple = 0.15 similarity window — the paper relies on that to explain
// the sub-100% recall of short descriptions.
package dirty

import (
	"fmt"
	"math/rand"

	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Params are the four knobs of the generator, each a probability in
// [0,1]. They mirror the paper's parameter list: percentage of duplicates,
// of typographical errors, of missing data, and of synonymous (but
// contradictory) data. Dataset 1 used 100%, 20%, 10% and 8%.
type Params struct {
	DuplicatePct float64 // fraction of candidates that receive a duplicate
	TypoPct      float64 // per-value probability of a typographical error
	MissingPct   float64 // per-element probability of being dropped
	SynonymPct   float64 // per-value probability of synonym replacement
}

// Dataset1Params are the paper's settings for Dataset 1.
func Dataset1Params() Params {
	return Params{DuplicatePct: 1.0, TypoPct: 0.20, MissingPct: 0.10, SynonymPct: 0.08}
}

func (p Params) validate() error {
	for _, v := range []struct {
		name string
		val  float64
	}{
		{"DuplicatePct", p.DuplicatePct},
		{"TypoPct", p.TypoPct},
		{"MissingPct", p.MissingPct},
		{"SynonymPct", p.SynonymPct},
	} {
		if v.val < 0 || v.val > 1 {
			return fmt.Errorf("dirty: %s = %v out of [0,1]", v.name, v.val)
		}
	}
	return nil
}

// Generator corrupts documents deterministically in its seed.
type Generator struct {
	params   Params
	rng      *rand.Rand
	synonyms map[string]string
}

// New creates a generator. synonyms maps exact values to replacements and
// may be nil.
func New(params Params, seed int64, synonyms map[string]string) (*Generator, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	return &Generator{
		params:   params,
		rng:      rand.New(rand.NewSource(seed)),
		synonyms: synonyms,
	}, nil
}

// Result reports what DirtyDocument produced.
type Result struct {
	// Duplicated[i] holds the candidate index (in document order of the
	// *output* document) of the duplicate created from original i; -1 if
	// original i was not duplicated. Originals keep their indexes because
	// duplicates are appended after all originals.
	Duplicated []int
	// GoldPairs lists (original, duplicate) candidate index pairs.
	GoldPairs [][2]int32
	// Typos, Dropped, Synonyms count applied corruptions.
	Typos, Dropped, Synonyms int
}

// DirtyDocument duplicates and corrupts candidates selected by
// candidatePath (an absolute XPath like /freedb/disc) in place: corrupted
// copies are appended to the candidates' parent after all originals.
func (g *Generator) DirtyDocument(doc *xmltree.Document, candidatePath string) (*Result, error) {
	q, err := xpath.Parse(candidatePath)
	if err != nil {
		return nil, fmt.Errorf("dirty: %w", err)
	}
	candidates := q.Eval(doc.Root)
	if len(candidates) == 0 {
		return nil, fmt.Errorf("dirty: no candidates at %s", candidatePath)
	}
	res := &Result{Duplicated: make([]int, len(candidates))}
	for i := range res.Duplicated {
		res.Duplicated[i] = -1
	}

	// Choose exactly round(n * DuplicatePct) candidates, spread evenly
	// but shuffled, so Fig. 8's "50% duplicates = 250 duplicate pairs +
	// 250 singletons" arithmetic holds.
	n := len(candidates)
	count := int(float64(n)*g.params.DuplicatePct + 0.5)
	perm := g.rng.Perm(n)[:count]

	next := n
	for _, idx := range perm {
		orig := candidates[idx]
		dup := orig.Clone()
		g.corrupt(dup, res)
		orig.Parent.AppendChild(dup)
		res.Duplicated[idx] = next
		res.GoldPairs = append(res.GoldPairs, [2]int32{int32(idx), int32(next)})
		next++
	}
	return res, nil
}

// corrupt applies missing-data, synonym and typo errors to the subtree.
func (g *Generator) corrupt(node *xmltree.Node, res *Result) {
	// Missing data: drop optional-looking children (never the first child,
	// so the duplicate keeps at least its leading identifier).
	var droppable []*xmltree.Node
	node.Walk(func(m *xmltree.Node) bool {
		for i, c := range m.Children {
			if i == 0 && m == node {
				continue
			}
			droppable = append(droppable, c)
		}
		return true
	})
	for _, c := range droppable {
		if c.Parent == nil {
			continue // an ancestor was already dropped
		}
		if g.rng.Float64() < g.params.MissingPct {
			if parent := c.Parent; parent != nil {
				parent.RemoveChild(c)
				res.Dropped++
			}
		}
	}

	// Synonyms, then typos, on the surviving text values.
	node.Walk(func(m *xmltree.Node) bool {
		if m.Text == "" {
			return true
		}
		if g.synonyms != nil {
			if alt, ok := g.synonyms[m.Text]; ok && g.rng.Float64() < g.params.SynonymPct {
				m.Text = alt
				res.Synonyms++
				return true // synonym replaces; no typo on top
			}
		}
		if g.rng.Float64() < g.params.TypoPct {
			m.Text = g.typo(m.Text)
			res.Typos++
		}
		return true
	})
}

const typoLetters = "abcdefghijklmnopqrstuvwxyz0123456789"

// typo applies 1-3 random character edits (substitution, insertion,
// deletion), never producing an empty string. Severity is skewed like
// human typos: 60% single-edit, 30% two edits, 10% three edits — enough
// multi-edit errors that short values (disc-ids) sometimes leave the
// θtuple window, as the paper observes at k=1, without routinely
// destroying long values.
func (g *Generator) typo(s string) string {
	r := []rune(s)
	edits := 1
	switch roll := g.rng.Float64(); {
	case roll >= 0.90:
		edits = 3
	case roll >= 0.60:
		edits = 2
	}
	for e := 0; e < edits; e++ {
		if len(r) == 0 {
			r = append(r, rune(typoLetters[g.rng.Intn(len(typoLetters))]))
			continue
		}
		pos := g.rng.Intn(len(r))
		switch g.rng.Intn(3) {
		case 0: // substitution
			r[pos] = rune(typoLetters[g.rng.Intn(len(typoLetters))])
		case 1: // insertion
			r = append(r[:pos], append([]rune{rune(typoLetters[g.rng.Intn(len(typoLetters))])}, r[pos:]...)...)
		default: // deletion
			if len(r) > 1 {
				r = append(r[:pos], r[pos+1:]...)
			}
		}
	}
	return string(r)
}
