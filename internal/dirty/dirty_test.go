package dirty

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/strdist"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func freedbDoc(t *testing.T, n int) *xmltree.Document {
	t.Helper()
	return datagen.FreeDBToXML(datagen.FreeDB(n, 42))
}

func TestDuplicateCountArithmetic(t *testing.T) {
	// Fig. 8: "at 50% duplicates, we have generated 250 duplicates, so we
	// have 250 duplicate pairs and 250 singletons".
	for _, pct := range []float64{0, 0.1, 0.5, 0.9, 1.0} {
		doc := freedbDoc(t, 100)
		g, err := New(Params{DuplicatePct: pct, TypoPct: 0.2, MissingPct: 0.1, SynonymPct: 0.08}, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := g.DirtyDocument(doc, "/freedb/disc")
		if err != nil {
			t.Fatal(err)
		}
		want := int(100*pct + 0.5)
		if len(res.GoldPairs) != want {
			t.Errorf("pct=%v: gold pairs = %d, want %d", pct, len(res.GoldPairs), want)
		}
		discs := doc.Root.ChildrenNamed("disc")
		if len(discs) != 100+want {
			t.Errorf("pct=%v: discs = %d, want %d", pct, len(discs), 100+want)
		}
	}
}

func TestGoldPairIndexesMatchDocumentOrder(t *testing.T) {
	doc := freedbDoc(t, 20)
	g, _ := New(Params{DuplicatePct: 1}, 2, nil)
	res, err := g.DirtyDocument(doc, "/freedb/disc")
	if err != nil {
		t.Fatal(err)
	}
	// candidates re-evaluated in document order must line up with the
	// indexes in GoldPairs
	candidates := xpath.MustParse("/freedb/disc").Eval(doc.Root)
	if len(candidates) != 40 {
		t.Fatalf("candidates = %d", len(candidates))
	}
	for _, p := range res.GoldPairs {
		orig, dup := candidates[p[0]], candidates[p[1]]
		// with no corruption params except duplication, the duplicate's
		// did must equal the original's
		if orig.Child("did").Text != dup.Child("did").Text {
			t.Errorf("pair %v: did %q vs %q", p, orig.Child("did").Text, dup.Child("did").Text)
		}
	}
	for i, dupIdx := range res.Duplicated {
		if dupIdx < 0 {
			t.Errorf("original %d not duplicated at 100%%", i)
		}
	}
}

func TestNoCorruptionWithZeroRates(t *testing.T) {
	doc := freedbDoc(t, 15)
	orig := doc.Root.Clone()
	g, _ := New(Params{DuplicatePct: 1}, 3, nil)
	res, err := g.DirtyDocument(doc, "/freedb/disc")
	if err != nil {
		t.Fatal(err)
	}
	if res.Typos != 0 || res.Dropped != 0 || res.Synonyms != 0 {
		t.Errorf("corruptions applied with zero rates: %+v", res)
	}
	// every duplicate must equal its original
	discs := doc.Root.ChildrenNamed("disc")
	for _, p := range res.GoldPairs {
		if discs[p[0]].String() != discs[p[1]].String() {
			t.Errorf("pair %v differs without corruption", p)
		}
	}
	// originals untouched
	for i, d := range orig.ChildrenNamed("disc") {
		if d.String() != discs[i].String() {
			t.Errorf("original %d modified", i)
		}
	}
}

func TestCorruptionRates(t *testing.T) {
	doc := freedbDoc(t, 300)
	g, _ := New(Dataset1Params(), 4, datagen.FreeDBSynonyms())
	res, err := g.DirtyDocument(doc, "/freedb/disc")
	if err != nil {
		t.Fatal(err)
	}
	if res.Typos == 0 {
		t.Error("no typos at 20%")
	}
	if res.Dropped == 0 {
		t.Error("nothing dropped at 10%")
	}
	if res.Synonyms == 0 {
		t.Error("no synonyms at 8% with a synonym table")
	}
	// Typo magnitude: duplicates' values differ from originals by 1-3
	// edits when typo'd; sanity check on dids.
	discs := doc.Root.ChildrenNamed("disc")
	typod, clean := 0, 0
	for _, p := range res.GoldPairs {
		a := discs[p[0]].Child("did").Text
		bNode := discs[p[1]].Child("did")
		if bNode == nil {
			continue // dropped
		}
		d := strdist.Levenshtein(a, bNode.Text)
		switch {
		case d == 0:
			clean++
		case d >= 1 && d <= 3:
			typod++
		default:
			t.Errorf("did corrupted by %d edits: %q vs %q", d, a, bNode.Text)
		}
	}
	if typod == 0 || clean == 0 {
		t.Errorf("typo mix degenerate: typod=%d clean=%d", typod, clean)
	}
}

func TestDeterministicInSeed(t *testing.T) {
	d1 := freedbDoc(t, 50)
	d2 := freedbDoc(t, 50)
	g1, _ := New(Dataset1Params(), 99, datagen.FreeDBSynonyms())
	g2, _ := New(Dataset1Params(), 99, datagen.FreeDBSynonyms())
	r1, err := g1.DirtyDocument(d1, "/freedb/disc")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g2.DirtyDocument(d2, "/freedb/disc")
	if err != nil {
		t.Fatal(err)
	}
	if d1.String() != d2.String() {
		t.Error("same seed produced different documents")
	}
	if len(r1.GoldPairs) != len(r2.GoldPairs) {
		t.Error("same seed produced different gold")
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Params{DuplicatePct: 1.5}, 0, nil); err == nil {
		t.Error("bad DuplicatePct accepted")
	}
	if _, err := New(Params{TypoPct: -0.1}, 0, nil); err == nil {
		t.Error("bad TypoPct accepted")
	}
	g, _ := New(Params{}, 0, nil)
	doc := freedbDoc(t, 5)
	if _, err := g.DirtyDocument(doc, "/nonexistent/path"); err == nil {
		t.Error("bad candidate path accepted")
	}
	if _, err := g.DirtyDocument(doc, "not a path ["); err == nil {
		t.Error("unparseable path accepted")
	}
}

func TestTypoNeverEmptiesValue(t *testing.T) {
	g, _ := New(Params{}, 5, nil)
	for i := 0; i < 200; i++ {
		if got := g.typo("a"); got == "" {
			t.Fatal("typo produced empty string")
		}
	}
}
