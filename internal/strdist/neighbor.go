package strdist

// NeighborIndex answers "which of the indexed strings are within d edits of
// this query?" for a small, fixed edit budget d (0, 1 or 2). It hashes the
// deletion neighborhood of each string: every variant obtained by deleting
// up to d runes. Two strings within edit distance d always share at least
// one common deletion variant (the FastSS observation), so variant-bucket
// collisions are a complete candidate set; candidates are then verified
// with the banded edit distance.
//
// For budgets above 2 the neighborhood explodes combinatorially, so callers
// should fall back to a scan with NormalizedBelow (the experiments package
// does this for long track titles).
type NeighborIndex struct {
	maxEdits int
	buckets  map[string][]int32
	values   []string
}

// NewNeighborIndex builds an index over values with the given edit budget.
// maxEdits is clamped to [0,2].
func NewNeighborIndex(values []string, maxEdits int) *NeighborIndex {
	if maxEdits < 0 {
		maxEdits = 0
	}
	if maxEdits > 2 {
		maxEdits = 2
	}
	idx := &NeighborIndex{
		maxEdits: maxEdits,
		buckets:  make(map[string][]int32, len(values)*2),
		values:   values,
	}
	for i, v := range values {
		for _, variant := range DeletionVariants(v, maxEdits) {
			idx.buckets[variant] = append(idx.buckets[variant], int32(i))
		}
	}
	return idx
}

// MaxEdits returns the edit budget the index was built with.
func (idx *NeighborIndex) MaxEdits() int { return idx.maxEdits }

// NumVariants returns the number of distinct deletion variants the
// index buckets under.
func (idx *NeighborIndex) NumVariants() int { return len(idx.buckets) }

// Lookup returns the indices (into the constructor's values slice) of all
// strings whose edit distance to q is <= maxEdits, excluding exact self
// positions listed in skip (pass -1 for none). Results are deduplicated and
// verified.
func (idx *NeighborIndex) Lookup(q string, skip int32) []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, variant := range DeletionVariants(q, idx.maxEdits) {
		for _, cand := range idx.buckets[variant] {
			if cand == skip || seen[cand] {
				continue
			}
			seen[cand] = true
			if _, ok := LevenshteinBounded(q, idx.values[cand], idx.maxEdits); ok {
				out = append(out, cand)
			}
		}
	}
	return out
}

// Variants calls fn once per distinct deletion variant the index
// buckets under — every string obtainable from an indexed value by
// deleting up to the budget's runes, the values themselves included.
// Iteration order is unspecified. Exported so a federation coordinator
// can summarize a member's bucket keys into a routing filter without
// rebuilding the neighborhood.
func (idx *NeighborIndex) Variants(fn func(variant string)) {
	for v := range idx.buckets {
		fn(v)
	}
}

// DeletionVariants returns s plus every string obtainable from s by
// deleting up to maxEdits runes (ordered, deduplicated). Exported so
// the odcodec writer can persist the same buckets NewNeighborIndex
// builds in memory, and a disk reader can probe them with the same
// query variants.
func DeletionVariants(s string, maxEdits int) []string {
	seen := map[string]bool{s: true}
	out := []string{s}
	frontier := []string{s}
	for e := 0; e < maxEdits; e++ {
		var next []string
		for _, f := range frontier {
			r := []rune(f)
			for i := range r {
				v := string(r[:i]) + string(r[i+1:])
				if !seen[v] {
					seen[v] = true
					out = append(out, v)
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return out
}
