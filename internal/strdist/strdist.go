// Package strdist implements the string distance machinery DogmatiX builds
// on: Levenshtein edit distance with a banded, early-terminating variant,
// the normalized edit distance "ned" of Definition 7, and the cheap lower
// bounds (length difference and bag distance) that Weis & Naumann introduced
// in their 2004 workshop paper [18] to avoid full edit distance
// computations. It also ships a deletion-neighborhood index for fast
// "within d edits" candidate lookup, and a handful of classic similarity
// measures (Jaro, Jaro-Winkler, q-grams, token cosine) used by the baseline
// comparators.
//
// All functions operate on runes, not bytes, so non-ASCII data (the
// FilmDienst German corpus) is measured correctly.
package strdist

import (
	"math"
	"sort"
	"strings"
	"unicode"
)

// Levenshtein returns the edit distance (insertions, deletions,
// substitutions, unit cost) between a and b.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	return levRunes(ra, rb)
}

func levRunes(ra, rb []rune) int {
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// LevenshteinBounded returns the edit distance between a and b if it is
// <= maxDist, and (maxDist+1, false) otherwise. It uses a diagonal band of
// width 2*maxDist+1 and early termination, so the cost is O(maxDist *
// min(len)) rather than O(len(a)*len(b)).
func LevenshteinBounded(a, b string, maxDist int) (int, bool) {
	if maxDist < 0 {
		return 0, false
	}
	ra, rb := []rune(a), []rune(b)
	if Abs(len(ra)-len(rb)) > maxDist {
		return maxDist + 1, false
	}
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	// prev/cur are full-width rows but only the band is computed.
	const inf = 1 << 29
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		if j <= maxDist {
			prev[j] = j
		} else {
			prev[j] = inf
		}
	}
	for i := 1; i <= len(ra); i++ {
		lo := max2(1, i-maxDist)
		hi := min2(len(rb), i+maxDist)
		if lo > 1 {
			cur[lo-1] = inf
		}
		if i <= maxDist {
			cur[0] = i
		} else {
			cur[0] = inf
		}
		rowMin := cur[0]
		for j := lo; j <= hi; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			v := prev[j-1] + cost
			if prev[j]+1 < v {
				v = prev[j] + 1
			}
			if cur[j-1]+1 < v {
				v = cur[j-1] + 1
			}
			cur[j] = v
			if v < rowMin {
				rowMin = v
			}
		}
		if hi < len(rb) {
			cur[hi+1] = inf
		}
		if rowMin > maxDist {
			return maxDist + 1, false
		}
		prev, cur = cur, prev
	}
	d := prev[len(rb)]
	if d > maxDist {
		return maxDist + 1, false
	}
	return d, true
}

// Normalized returns the edit distance between a and b normalized by the
// length (in runes) of the longer string, as in Definition 7 of the paper.
// Two empty strings have distance 0.
func Normalized(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	m := max2(la, lb)
	if m == 0 {
		return 0
	}
	return float64(Levenshtein(a, b)) / float64(m)
}

// NormalizedBelow reports whether ned(a,b) < theta, computing at most the
// bounded edit distance implied by theta. It applies the length-difference
// and bag-distance lower bounds first, so most non-matches never reach the
// DP. This is the comparison-reduction trick of [18].
func NormalizedBelow(a, b string, theta float64) bool {
	la, lb := len([]rune(a)), len([]rune(b))
	m := max2(la, lb)
	if m == 0 {
		return 0 < theta // ned = 0
	}
	// strict inequality: lev < theta*m  =>  lev <= ceil(theta*m)-1
	maxDist := strictBudget(theta, m)
	if maxDist < 0 {
		return false
	}
	if Abs(la-lb) > maxDist {
		return false
	}
	if BagDistance(a, b) > maxDist {
		return false
	}
	_, ok := LevenshteinBounded(a, b, maxDist)
	return ok
}

// strictBudget returns the largest integer d with d < theta*m, i.e. the
// maximum edit distance still strictly below the threshold.
func strictBudget(theta float64, m int) int {
	lim := theta * float64(m)
	d := int(lim)
	if float64(d) >= lim {
		d--
	}
	return d
}

// MaxEditsBelow exposes the strict edit budget used by NormalizedBelow for
// strings of maximum rune length m: the largest d with d/m < theta.
func MaxEditsBelow(theta float64, m int) int {
	if m <= 0 {
		return 0
	}
	d := strictBudget(theta, m)
	if d < 0 {
		return -1
	}
	return d
}

// LengthLowerBound returns |len(a)-len(b)|, a lower bound on Levenshtein.
func LengthLowerBound(a, b string) int {
	return Abs(len([]rune(a)) - len([]rune(b)))
}

// BagDistance returns the bag (multiset) distance between a and b:
// max(|bag(a)-bag(b)|, |bag(b)-bag(a)|). It is a lower bound on the
// Levenshtein distance and costs O(len(a)+len(b)).
func BagDistance(a, b string) int {
	counts := map[rune]int{}
	for _, r := range a {
		counts[r]++
	}
	for _, r := range b {
		counts[r]--
	}
	pos, neg := 0, 0
	for _, c := range counts {
		if c > 0 {
			pos += c
		} else {
			neg -= c
		}
	}
	return max2(pos, neg)
}

// Jaro returns the Jaro similarity in [0,1].
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := max2(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := max2(0, i-window)
		hi := min2(lb-1, i+window)
		for j := lo; j <= hi; j++ {
			if matchB[j] || ra[i] != rb[j] {
				continue
			}
			matchA[i] = true
			matchB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// JaroWinkler returns the Jaro-Winkler similarity with the standard prefix
// scale 0.1 and max prefix length 4.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	ra, rb := []rune(a), []rune(b)
	prefix := 0
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// QGramJaccard returns the Jaccard similarity of the q-gram sets of a and
// b. Strings shorter than q are padded with '#'.
func QGramJaccard(a, b string, q int) float64 {
	ga, gb := qgrams(a, q), qgrams(b, q)
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	inter := 0
	for g := range ga {
		if gb[g] {
			inter++
		}
	}
	union := len(ga) + len(gb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

func qgrams(s string, q int) map[string]bool {
	if q <= 0 {
		q = 2
	}
	r := []rune(s)
	for len(r) < q && len(r) > 0 {
		r = append(r, '#')
	}
	out := map[string]bool{}
	for i := 0; i+q <= len(r); i++ {
		out[string(r[i:i+q])] = true
	}
	return out
}

// TokenCosine returns the cosine similarity of the whitespace token
// frequency vectors of a and b, lowercased.
func TokenCosine(a, b string) float64 {
	ta, tb := tokenCounts(a), tokenCounts(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	var dot, na, nb float64
	for tok, ca := range ta {
		na += float64(ca * ca)
		if cb, ok := tb[tok]; ok {
			dot += float64(ca * cb)
		}
	}
	for _, cb := range tb {
		nb += float64(cb * cb)
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

func tokenCounts(s string) map[string]int {
	out := map[string]int{}
	for _, tok := range strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	}) {
		out[tok]++
	}
	return out
}

// SortedTokens returns the lowercased tokens of s in sorted order joined by
// spaces. Used by the sorted-neighborhood baseline to build sorting keys.
func SortedTokens(s string) string {
	toks := strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
	sort.Strings(toks)
	return strings.Join(toks, " ")
}

func min3(a, b, c int) int { return min2(min2(a, b), c) }

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Abs returns |x|. Exported because length-window pruning around edit
// budgets needs it in the index packages as well.
func Abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
