package strdist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLevenshteinKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"The Matrix", "Matrix", 4},
		{"Boston", "New York", 7},    // paper Sec. 5.1: 7/8
		{"Boston", "Los Angeles", 8}, // paper Sec. 5.1: 8/11
		{"gumbo", "gambol", 2},
		{"identical", "identical", 0},
		{"äöü", "aou", 3},
		{"ab", "ba", 2},
	}
	for _, tc := range cases {
		if got := Levenshtein(tc.a, tc.b); got != tc.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestPaperCityDistances(t *testing.T) {
	// Section 5.1: odtDist(Boston, Los Angeles) = 8/11 and
	// odtDist(Boston, New York) = 7/8.
	if got := Normalized("Boston", "Los Angeles"); !approxEqual(got, 8.0/11) {
		t.Errorf("ned(Boston, Los Angeles) = %v, want %v", got, 8.0/11)
	}
	if got := Normalized("Boston", "New York"); !approxEqual(got, 7.0/8) {
		t.Errorf("ned(Boston, New York) = %v, want %v", got, 7.0/8)
	}
}

func TestLevenshteinBounded(t *testing.T) {
	cases := []struct {
		a, b    string
		maxDist int
		want    int
		ok      bool
	}{
		{"kitten", "sitting", 3, 3, true},
		{"kitten", "sitting", 2, 3, false},
		{"abc", "abc", 0, 0, true},
		{"abc", "abd", 0, 1, false},
		{"abc", "abd", 1, 1, true},
		{"", "xyz", 2, 3, false},
		{"", "xyz", 3, 3, true},
		{"longstringhere", "x", 2, 3, false},
	}
	for _, tc := range cases {
		got, ok := LevenshteinBounded(tc.a, tc.b, tc.maxDist)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("LevenshteinBounded(%q,%q,%d) = %d,%v want %d,%v",
				tc.a, tc.b, tc.maxDist, got, ok, tc.want, tc.ok)
		}
	}
}

func TestNormalizedRangeAndEmpty(t *testing.T) {
	if got := Normalized("", ""); got != 0 {
		t.Errorf("ned of empties = %v", got)
	}
	if got := Normalized("", "abc"); got != 1 {
		t.Errorf("ned(\"\",abc) = %v", got)
	}
	if got := Normalized("same", "same"); got != 0 {
		t.Errorf("ned same = %v", got)
	}
}

func TestNormalizedBelow(t *testing.T) {
	theta := 0.15
	cases := []struct {
		a, b string
		want bool
	}{
		{"0a1b2c3d", "0a1b2c3e", true},  // 1/8 = 0.125 < 0.15
		{"0a1b2c3d", "0a1b2c44", false}, // 2/8 = 0.25
		{"identical", "identical", true},
		{"", "", true},
		{"x", "", false}, // ned=1
		{"The Matrix", "The Matrlx", true},
	}
	for _, tc := range cases {
		if got := NormalizedBelow(tc.a, tc.b, theta); got != tc.want {
			t.Errorf("NormalizedBelow(%q,%q,%v) = %v, want %v (ned=%v)",
				tc.a, tc.b, theta, got, tc.want, Normalized(tc.a, tc.b))
		}
	}
}

func TestMaxEditsBelow(t *testing.T) {
	// strictly-below semantics: lev < theta*m
	cases := []struct {
		theta float64
		m     int
		want  int
	}{
		{0.15, 8, 1},   // 1.2 -> 1
		{0.15, 6, 0},   // 0.9 -> 0
		{0.15, 20, 2},  // 3.0 -> 2 (strict)
		{0.5, 4, 1},    // 2.0 -> 1 (strict)
		{0.15, 40, 5},  // 6.0 -> 5
		{0.05, 10, -1}, // 0.5 -> no edit allowedexact-only: budget 0 means lev 0 < 0.5 ok => 0
	}
	// fix the last case: 0 < 0.5, so budget is 0
	cases[5].want = 0
	for _, tc := range cases {
		if got := MaxEditsBelow(tc.theta, tc.m); got != tc.want {
			t.Errorf("MaxEditsBelow(%v,%d) = %d, want %d", tc.theta, tc.m, got, tc.want)
		}
	}
}

func TestBagDistanceKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"abc", "abc", 0},
		{"abc", "acb", 0}, // bag ignores order
		{"abc", "abd", 1},
		{"aaa", "a", 2},
		{"", "xy", 2},
	}
	for _, tc := range cases {
		if got := BagDistance(tc.a, tc.b); got != tc.want {
			t.Errorf("BagDistance(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestJaroWinklerKnown(t *testing.T) {
	if got := Jaro("", ""); got != 1 {
		t.Errorf("Jaro empty = %v", got)
	}
	if got := Jaro("abc", ""); got != 0 {
		t.Errorf("Jaro vs empty = %v", got)
	}
	if got := Jaro("martha", "marhta"); !approxEqual(got, 0.944444) {
		t.Errorf("Jaro(martha,marhta) = %v", got)
	}
	if got := JaroWinkler("martha", "marhta"); !approxEqual(got, 0.961111) {
		t.Errorf("JaroWinkler(martha,marhta) = %v", got)
	}
	if got := JaroWinkler("same", "same"); got != 1 {
		t.Errorf("JaroWinkler same = %v", got)
	}
}

func TestQGramJaccard(t *testing.T) {
	if got := QGramJaccard("", "", 2); got != 1 {
		t.Errorf("empty qgram = %v", got)
	}
	if got := QGramJaccard("abc", "abc", 2); got != 1 {
		t.Errorf("identical qgram = %v", got)
	}
	if got := QGramJaccard("abc", "xyz", 2); got != 0 {
		t.Errorf("disjoint qgram = %v", got)
	}
	mid := QGramJaccard("night", "nacht", 2)
	if mid <= 0 || mid >= 1 {
		t.Errorf("night/nacht qgram = %v, want in (0,1)", mid)
	}
}

func TestTokenCosine(t *testing.T) {
	if got := TokenCosine("the matrix", "Matrix, The"); !approxEqual(got, 1) {
		t.Errorf("token cosine reordered = %v", got)
	}
	if got := TokenCosine("alpha beta", "gamma delta"); got != 0 {
		t.Errorf("disjoint cosine = %v", got)
	}
	if got := TokenCosine("", ""); got != 1 {
		t.Errorf("empty cosine = %v", got)
	}
}

func TestSortedTokens(t *testing.T) {
	if got := SortedTokens("The Matrix, Reloaded"); got != "matrix reloaded the" {
		t.Errorf("SortedTokens = %q", got)
	}
	if got := SortedTokens(""); got != "" {
		t.Errorf("SortedTokens empty = %q", got)
	}
}

func TestNeighborIndexBasic(t *testing.T) {
	values := []string{"0001", "0002", "0011", "9999", "0001"}
	idx := NewNeighborIndex(values, 1)
	got := idx.Lookup("0001", 0)
	want := map[int32]bool{1: true, 2: true, 4: true}
	if len(got) != len(want) {
		t.Fatalf("Lookup = %v, want keys %v", got, want)
	}
	for _, g := range got {
		if !want[g] {
			t.Errorf("unexpected neighbor index %d", g)
		}
	}
	if res := idx.Lookup("zzzz", -1); len(res) != 0 {
		t.Errorf("far query returned %v", res)
	}
}

func TestNeighborIndexTwoEdits(t *testing.T) {
	values := []string{"abcdef", "abXdYf", "abcdeX", "zzzzzz"}
	idx := NewNeighborIndex(values, 2)
	got := idx.Lookup("abcdef", 0)
	found := map[int32]bool{}
	for _, g := range got {
		found[g] = true
	}
	if !found[1] || !found[2] || found[3] {
		t.Errorf("Lookup(2 edits) = %v", got)
	}
}

func TestNeighborIndexZeroEdits(t *testing.T) {
	values := []string{"a", "b", "a"}
	idx := NewNeighborIndex(values, 0)
	got := idx.Lookup("a", 0)
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("Lookup(0 edits) = %v, want [2]", got)
	}
}

// Property: Levenshtein is symmetric, non-negative, zero iff equal, and
// satisfies the triangle inequality.
func TestQuickLevenshteinMetric(t *testing.T) {
	f := func(a, b, c string) bool {
		a, b, c = clip(a), clip(b), clip(c)
		dab := Levenshtein(a, b)
		dba := Levenshtein(b, a)
		dac := Levenshtein(a, c)
		dcb := Levenshtein(c, b)
		if dab != dba || dab < 0 {
			return false
		}
		if (dab == 0) != (a == b) {
			return false
		}
		return dab <= dac+dcb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: lower bounds sandwich: lenDiff <= bag <= lev <= maxLen.
func TestQuickBoundsSandwich(t *testing.T) {
	f := func(a, b string) bool {
		a, b = clip(a), clip(b)
		lev := Levenshtein(a, b)
		bag := BagDistance(a, b)
		ld := LengthLowerBound(a, b)
		ra, rb := len([]rune(a)), len([]rune(b))
		m := ra
		if rb > m {
			m = rb
		}
		return ld <= bag && bag <= lev && lev <= m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: bounded Levenshtein agrees with the full computation.
func TestQuickBoundedAgrees(t *testing.T) {
	f := func(a, b string, mx uint8) bool {
		a, b = clip(a), clip(b)
		maxDist := int(mx % 8)
		full := Levenshtein(a, b)
		got, ok := LevenshteinBounded(a, b, maxDist)
		if full <= maxDist {
			return ok && got == full
		}
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Normalized is in [0,1] and NormalizedBelow agrees with it.
func TestQuickNormalizedBelowAgrees(t *testing.T) {
	thetas := []float64{0.1, 0.15, 0.3, 0.55, 0.9}
	f := func(a, b string, ti uint8) bool {
		a, b = clip(a), clip(b)
		theta := thetas[int(ti)%len(thetas)]
		ned := Normalized(a, b)
		if ned < 0 || ned > 1 {
			return false
		}
		return NormalizedBelow(a, b, theta) == (ned < theta)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: NeighborIndex(1) finds exactly the strings within 1 edit.
func TestQuickNeighborIndexComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		values := make([]string, 30)
		for i := range values {
			values[i] = randWord(rng)
		}
		idx := NewNeighborIndex(values, 1)
		q := values[rng.Intn(len(values))]
		got := map[int32]bool{}
		for _, g := range idx.Lookup(q, -1) {
			got[g] = true
		}
		for i, v := range values {
			want := Levenshtein(q, v) <= 1
			if got[int32(i)] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func randWord(rng *rand.Rand) string {
	letters := "abcd"
	n := rng.Intn(6) + 1
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}

func clip(s string) string {
	r := []rune(s)
	if len(r) > 24 {
		r = r[:24]
	}
	return string(r)
}

func approxEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-4
}

func BenchmarkLevenshtein(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Levenshtein("The Matrix Reloaded", "The Matrlx Reloadad")
	}
}

func BenchmarkNormalizedBelowFiltered(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NormalizedBelow("The Matrix Reloaded", "Completely Different Title", 0.15)
	}
}
