package sim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/od"
)

// paperStore builds the Table 2 ODs.
func paperStore() od.Store {
	s := od.NewMemStore()
	s.Add(&od.OD{Object: "/moviedoc/movie[1]", Tuples: []od.Tuple{
		{Value: "The Matrix", Name: "/moviedoc/movie/title", Type: "TITLE"},
		{Value: "1999", Name: "/moviedoc/movie/year", Type: "YEAR"},
		{Value: "Keanu Reeves", Name: "/moviedoc/movie/actor/name", Type: "ACTORNAME"},
		{Value: "L. Fishburne", Name: "/moviedoc/movie/actor/name", Type: "ACTORNAME"},
	}})
	s.Add(&od.OD{Object: "/moviedoc/movie[2]", Tuples: []od.Tuple{
		{Value: "Matrix", Name: "/moviedoc/movie/title", Type: "TITLE"},
		{Value: "1999", Name: "/moviedoc/movie/year", Type: "YEAR"},
		{Value: "Keanu Reeves", Name: "/moviedoc/movie/actor/name", Type: "ACTORNAME"},
	}})
	s.Add(&od.OD{Object: "/moviedoc/movie[3]", Tuples: []od.Tuple{
		{Value: "Signs", Name: "/moviedoc/movie/title", Type: "TITLE"},
		{Value: "2002", Name: "/moviedoc/movie/year", Type: "YEAR"},
		{Value: "Mel Gibson", Name: "/moviedoc/movie/actor/name", Type: "ACTORNAME"},
	}})
	s.Finalize(0.55)
	return s
}

func TestPaperExampleDuplicates(t *testing.T) {
	s := paperStore()
	res := Similarity(s, s.ODs()[0], s.ODs()[1], 0.55)
	// title (0.4), year (0), actor KR (0) all similar; L. Fishburne is
	// non-specified (movie 2 has no leftover actor) -> no contradictions.
	if len(res.Similar) != 3 {
		t.Errorf("similar pairs = %d, want 3: %v", len(res.Similar), res.Similar)
	}
	if len(res.Contradictory) != 0 {
		t.Errorf("contradictory = %v, want none", res.Contradictory)
	}
	if res.Score != 1 {
		t.Errorf("sim(movie1,movie2) = %v, want 1", res.Score)
	}
	if !Classify(res.Score, 0.55) {
		t.Error("movies 1 and 2 should classify as duplicates")
	}
}

func TestPaperExampleNonDuplicates(t *testing.T) {
	s := paperStore()
	for _, pair := range [][2]int{{0, 2}, {1, 2}} {
		res := Similarity(s, s.ODs()[pair[0]], s.ODs()[pair[1]], 0.55)
		// The 1999/2002 year pair is within theta 0.55 (ned 0.5) but its
		// softIDF is ln(3/3)=0, so it cannot push the score up.
		if res.Score >= 0.55 {
			t.Errorf("sim(movie%d,movie%d) = %v, want < 0.55", pair[0]+1, pair[1]+1, res.Score)
		}
		if Classify(res.Score, 0.55) {
			t.Errorf("movies %d and %d misclassified as duplicates", pair[0]+1, pair[1]+1)
		}
	}
}

// citiesStore reproduces the Sec. 5.1 cities example.
func citiesStore() od.Store {
	s := od.NewMemStore()
	add := func(obj string, cities ...string) {
		o := &od.OD{Object: obj}
		for _, c := range cities {
			o.Tuples = append(o.Tuples, od.Tuple{Value: c, Name: "/countries/country/city", Type: "CITY"})
		}
		s.Add(o)
	}
	add("/countries/country[1]", "New York", "Los Angeles", "Miami")
	add("/countries/country[2]", "Miami", "Boston")
	s.Finalize(0.15)
	return s
}

func TestCitiesContradictoryMatching(t *testing.T) {
	s := citiesStore()
	res := Similarity(s, s.ODs()[0], s.ODs()[1], 0.15)
	if len(res.Similar) != 1 || res.Similar[0].A.Value != "Miami" {
		t.Fatalf("similar = %v, want Miami pair", res.Similar)
	}
	// Exactly one contradictory pair (lists are not exhaustive), and it is
	// (New York, Boston) because 7/8 > 8/11.
	if len(res.Contradictory) != 1 {
		t.Fatalf("contradictory = %v, want exactly 1 pair", res.Contradictory)
	}
	con := res.Contradictory[0]
	if con.A.Value != "New York" || con.B.Value != "Boston" {
		t.Errorf("contradictory pair = (%s,%s), want (New York,Boston)", con.A.Value, con.B.Value)
	}
	if math.Abs(con.Dist-7.0/8) > 1e-9 {
		t.Errorf("contradictory dist = %v, want 0.875", con.Dist)
	}
}

func TestEmptyValuesAreInert(t *testing.T) {
	s := od.NewMemStore()
	s.Add(&od.OD{Object: "a", Tuples: []od.Tuple{
		{Value: "x", Type: "T"},
		{Value: "", Type: "EMPTY"},
	}})
	s.Add(&od.OD{Object: "b", Tuples: []od.Tuple{
		{Value: "x", Type: "T"},
		{Value: "", Type: "EMPTY"},
	}})
	s.Finalize(0.15)
	res := Similarity(s, s.ODs()[0], s.ODs()[1], 0.15)
	for _, m := range append(res.Similar, res.Contradictory...) {
		if m.A.Type == "EMPTY" || m.B.Type == "EMPTY" {
			t.Errorf("empty tuple matched: %v", m)
		}
	}
}

func TestIncomparableTypesNeverMatch(t *testing.T) {
	// Sec. 5 condition 1: review and sold-number cannot contribute.
	s := od.NewMemStore()
	s.Add(&od.OD{Object: "a", Tuples: []od.Tuple{
		{Value: "The Matrix", Type: "TITLE"},
		{Value: "great!", Type: "REVIEW"},
	}})
	s.Add(&od.OD{Object: "b", Tuples: []od.Tuple{
		{Value: "Matrix", Type: "TITLE"},
		{Value: "500", Type: "SOLD"},
	}})
	addFiller(s, 10)
	s.Finalize(0.55)
	res := Similarity(s, s.ODs()[0], s.ODs()[1], 0.55)
	if len(res.Similar) != 1 {
		t.Fatalf("similar = %v", res.Similar)
	}
	if len(res.Contradictory) != 0 {
		t.Errorf("incomparable data counted as contradictory: %v", res.Contradictory)
	}
	if res.Score != 1 {
		t.Errorf("score = %v, want 1 (only titles comparable)", res.Score)
	}
}

func TestMissingDataDoesNotPenalize(t *testing.T) {
	// Condition 4: one movie missing actors must not reduce similarity.
	s := od.NewMemStore()
	s.Add(&od.OD{Object: "a", Tuples: []od.Tuple{
		{Value: "Same Title", Type: "TITLE"},
		{Value: "Actor One", Type: "ACTOR"},
		{Value: "Actor Two", Type: "ACTOR"},
	}})
	s.Add(&od.OD{Object: "b", Tuples: []od.Tuple{
		{Value: "Same Title", Type: "TITLE"},
	}})
	addFiller(s, 10)
	s.Finalize(0.15)
	res := Similarity(s, s.ODs()[0], s.ODs()[1], 0.15)
	if res.Score != 1 {
		t.Errorf("score with missing actors = %v, want 1", res.Score)
	}
}

// addFiller pads a store with unrelated objects so softIDF values behave
// like on a realistically sized corpus (with only 2 objects, any tuple
// shared by both has softIDF ln(2/2) = 0).
func addFiller(s od.Store, n int) {
	for i := 0; i < n; i++ {
		s.Add(&od.OD{Object: fmt.Sprintf("filler-%d", i), Tuples: []od.Tuple{
			{Value: fmt.Sprintf("filler title %d", i), Type: "TITLE"},
			{Value: fmt.Sprintf("filler person %c", 'A'+i), Type: "ACTOR"},
		}})
	}
}

func TestContradictoryDataReduces(t *testing.T) {
	s := od.NewMemStore()
	s.Add(&od.OD{Object: "a", Tuples: []od.Tuple{
		{Value: "Same Title", Type: "TITLE"},
		{Value: "Actor One", Type: "ACTOR"},
	}})
	s.Add(&od.OD{Object: "b", Tuples: []od.Tuple{
		{Value: "Same Title", Type: "TITLE"},
		{Value: "Entirely Different Person", Type: "ACTOR"},
	}})
	addFiller(s, 10)
	s.Finalize(0.15)
	res := Similarity(s, s.ODs()[0], s.ODs()[1], 0.15)
	if len(res.Contradictory) != 1 {
		t.Fatalf("contradictory = %v", res.Contradictory)
	}
	if res.Score >= 1 || res.Score <= 0 {
		t.Errorf("score = %v, want in (0,1)", res.Score)
	}
}

func TestScoreZeroWhenNothingShared(t *testing.T) {
	s := od.NewMemStore()
	s.Add(&od.OD{Object: "a", Tuples: []od.Tuple{{Value: "aaaa", Type: "T"}}})
	s.Add(&od.OD{Object: "b", Tuples: []od.Tuple{{Value: "zzzz", Type: "T"}}})
	s.Finalize(0.15)
	res := Similarity(s, s.ODs()[0], s.ODs()[1], 0.15)
	if len(res.Similar) != 0 || res.Score != 0 {
		t.Errorf("score = %v similar=%v, want 0", res.Score, res.Similar)
	}
}

func TestClassify(t *testing.T) {
	if Classify(0.55, 0.55) {
		t.Error("threshold is strict: sim must exceed θcand")
	}
	if !Classify(0.56, 0.55) {
		t.Error("0.56 should classify as duplicate")
	}
}

func TestFilterSharedVsUnique(t *testing.T) {
	s := od.NewMemStore()
	s.Add(&od.OD{Object: "a", Tuples: []od.Tuple{
		{Value: "shared value", Type: "T"},
		{Value: "unique to a", Type: "T"},
	}})
	s.Add(&od.OD{Object: "b", Tuples: []od.Tuple{
		{Value: "shared value", Type: "T"},
	}})
	s.Add(&od.OD{Object: "c", Tuples: []od.Tuple{
		{Value: "nothing alike here", Type: "T"},
	}})
	s.Finalize(0.15)
	fa := Filter(s, s.ODs()[0])
	if fa <= 0 || fa >= 1 {
		t.Errorf("f(a) = %v, want in (0,1)", fa)
	}
	fc := Filter(s, s.ODs()[2])
	if fc != 0 {
		t.Errorf("f(c) = %v, want 0 (all tuples unique)", fc)
	}
	fb := Filter(s, s.ODs()[1])
	if fb != 1 {
		t.Errorf("f(b) = %v, want 1 (all tuples shared)", fb)
	}
}

func TestFilterEmptyOD(t *testing.T) {
	s := od.NewMemStore()
	s.Add(&od.OD{Object: "a"})
	s.Add(&od.OD{Object: "b", Tuples: []od.Tuple{{Value: "x", Type: "T"}}})
	s.Finalize(0.15)
	if got := Filter(s, s.ODs()[0]); got != 0 {
		t.Errorf("f(empty) = %v", got)
	}
}

func TestFilterExactKeepsDuplicatesOnPaperExample(t *testing.T) {
	s := paperStore()
	theta := 0.55
	// movies 1/2 are duplicates; the exact Eq. 9 filter must keep both and
	// upper-bound their pairwise score.
	f1 := FilterExact(s, s.ODs()[0], theta)
	f2 := FilterExact(s, s.ODs()[1], theta)
	res := Similarity(s, s.ODs()[0], s.ODs()[1], theta)
	if f1 < res.Score-1e-9 || f2 < res.Score-1e-9 {
		t.Errorf("f below sim: f1=%v f2=%v sim=%v", f1, f2, res.Score)
	}
	if f1 <= theta || f2 <= theta {
		t.Errorf("exact filter would prune a real duplicate: f1=%v f2=%v", f1, f2)
	}
}

func TestFilterIsMoreAggressiveThanExact(t *testing.T) {
	// The indexed approximation treats "unique anywhere" tuples as always
	// contradictory, so it never exceeds the exact filter on uniform data
	// and prunes at least as much.
	s := paperStore()
	theta := 0.55
	for i := 0; i < s.Size(); i++ {
		fIdx := Filter(s, s.ODs()[i])
		fEx := FilterExact(s, s.ODs()[i], theta)
		if fIdx > fEx+1e-9 {
			t.Errorf("object %d: indexed filter %v above exact %v", i, fIdx, fEx)
		}
	}
}

// Property: sim is symmetric and in [0,1].
func TestQuickSimilaritySymmetricAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, _ := randomStore(rng, 8)
		i := rng.Intn(s.Size())
		j := rng.Intn(s.Size())
		ra := Similarity(s, s.ODs()[i], s.ODs()[j], 0.3)
		rb := Similarity(s, s.ODs()[j], s.ODs()[i], 0.3)
		if ra.Score != rb.Score {
			return false
		}
		return ra.Score >= 0 && ra.Score <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: similar matching is 1:1 — no tuple occurs in two matched pairs.
func TestQuickMatchingOneToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, _ := randomStore(rng, 6)
		i, j := rng.Intn(s.Size()), rng.Intn(s.Size())
		if i == j {
			return true
		}
		res := Similarity(s, s.ODs()[i], s.ODs()[j], 0.3)
		seenA := map[string]bool{}
		seenB := map[string]bool{}
		for _, m := range append(append([]MatchedPair{}, res.Similar...), res.Contradictory...) {
			ka := fmt.Sprintf("%s|%s|%s", m.A.Type, m.A.Name, m.A.Value)
			kb := fmt.Sprintf("%s|%s|%s", m.B.Type, m.B.Name, m.B.Value)
			// duplicate values can legitimately repeat; count multiplicity
			for n := 0; ; n++ {
				k := fmt.Sprintf("%s#%d", ka, n)
				if !seenA[k] {
					seenA[k] = true
					break
				}
				if n > len(s.ODs()[i].Tuples) {
					return false
				}
			}
			for n := 0; ; n++ {
				k := fmt.Sprintf("%s#%d", kb, n)
				if !seenB[k] {
					seenB[k] = true
					break
				}
				if n > len(s.ODs()[j].Tuples) {
					return false
				}
			}
		}
		// multiplicity check: matched pairs cannot exceed min(|A|,|B|) per type
		return len(res.Similar)+len(res.Contradictory) <= len(s.ODs()[i].Tuples)+len(s.ODs()[j].Tuples)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: FilterExact upper-bounds sim against every partner.
func TestQuickFilterExactUpperBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, theta := randomStore(rng, 7)
		for i := 0; i < s.Size(); i++ {
			fi := FilterExact(s, s.ODs()[i], theta)
			for j := 0; j < s.Size(); j++ {
				if i == j {
					continue
				}
				res := Similarity(s, s.ODs()[i], s.ODs()[j], theta)
				if res.Score > fi+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// randomStore builds a small random corpus over a handful of types with
// value collisions and near-misses, so matching logic gets exercised.
func randomStore(rng *rand.Rand, n int) (od.Store, float64) {
	words := []string{"alpha", "alphb", "beta", "betta", "gamma", "gamna", "delta", "omega"}
	types := []string{"T1", "T2", "T3"}
	s := od.NewMemStore()
	for i := 0; i < n; i++ {
		o := &od.OD{Object: fmt.Sprintf("/r/o[%d]", i+1)}
		k := rng.Intn(4) + 1
		for t := 0; t < k; t++ {
			o.Tuples = append(o.Tuples, od.Tuple{
				Value: words[rng.Intn(len(words))],
				Name:  "/r/o/v",
				Type:  types[rng.Intn(len(types))],
			})
		}
		s.Add(o)
	}
	theta := 0.3
	s.Finalize(theta)
	return s, theta
}

// TestFilterExactOnMutatedStore pins the regression where FilterExact
// indexed the span-length ODs() slice (nil at removed slots) by the
// live count and dereferenced a removed slot.
func TestFilterExactOnMutatedStore(t *testing.T) {
	store := od.NewMemStore()
	mk := func(obj, val string) *od.OD {
		return &od.OD{Object: obj, Tuples: []od.Tuple{{Value: val, Name: "/db/r/v", Type: "V"}}}
	}
	store.Add(mk("/db/r[1]", "alpha"))
	store.Add(mk("/db/r[2]", "alphq"))
	store.Add(mk("/db/r[3]", "gamma"))
	store.Finalize(0.25)
	if err := store.Remove([]int32{1}); err != nil {
		t.Fatal(err)
	}
	o := store.OD(0)
	got := FilterExact(store, o, 0.25)
	// The reference: the same live objects in a fresh store.
	fresh := od.NewMemStore()
	fresh.Add(mk("/db/r[1]", "alpha"))
	fresh.Add(mk("/db/r[3]", "gamma"))
	fresh.Finalize(0.25)
	want := FilterExact(fresh, fresh.OD(0), 0.25)
	if got != want {
		t.Fatalf("FilterExact on mutated store = %v, fresh = %v", got, want)
	}
}
