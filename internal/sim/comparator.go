package sim

import "repro/internal/od"

// Class is the classification of one candidate pair, following the
// framework's three classes of Section 2.2.
type Class int

const (
	// ClassNonDuplicate is C3: the pair is not reported.
	ClassNonDuplicate Class = iota
	// ClassPossible is C2: possible duplicates, reported for expert review.
	ClassPossible
	// ClassDuplicate is C1: duplicates, joined into clusters.
	ClassDuplicate
)

// Comparator is the Step 5 pairwise strategy: how a candidate pair is
// scored and how the score maps to a class. The pipeline treats it as a
// black box, so the paper's Sec. 5.1 measure, a baseline measure, or a
// learned model are interchangeable.
//
// Two pipeline optimizations are lossless ONLY for the paper's measure:
// shared-value blocking visits just the pairs sharing a θtuple-similar
// value, and the Step 4 object filter upper-bounds the Sec. 5.1 score. A
// comparator that can score pairs without similar tuple values (e.g. a
// tree-edit measure) must run with Config.DisableBlocking and without
// UseFilter — or supply a matching ObjectFilter — or those pairs are
// silently never compared.
type Comparator interface {
	// Compare scores the pair; higher means more similar. Must be
	// symmetric and deterministic.
	Compare(store od.Store, a, b *od.OD) float64
	// Classify maps a Compare score to one of the three classes.
	Classify(score float64) Class
}

// ObjectFilter is the Step 4 comparison-reduction strategy: an upper bound
// on the best similarity an object can reach against any partner. Objects
// whose bound does not exceed the duplicate threshold are pruned wholesale.
type ObjectFilter interface {
	Bound(store od.Store, o *od.OD) float64
}

// Classifier is the paper's duplicate definition: the Section 5.1
// similarity measure scored at θtuple, classified per Definition 6
// (duplicates iff sim > θcand) with the optional C2 band
// (θpossible < sim <= θcand) of Section 2.2.
type Classifier struct {
	ThetaTuple    float64
	ThetaCand     float64
	ThetaPossible float64 // 0 disables the possible-duplicates class
}

var _ Comparator = Classifier{}

// Compare implements Comparator with Similarity.
func (c Classifier) Compare(store od.Store, a, b *od.OD) float64 {
	return Similarity(store, a, b, c.ThetaTuple).Score
}

// Classify implements Comparator.
func (c Classifier) Classify(score float64) Class {
	switch {
	case Classify(score, c.ThetaCand):
		return ClassDuplicate
	case c.ThetaPossible > 0 && score > c.ThetaPossible:
		return ClassPossible
	default:
		return ClassNonDuplicate
	}
}

// IndexFilter is the pipeline's object filter: f(ODi) per Section 5.2,
// computed from the store's value indexes without touching any other OD
// pairwise (see Filter).
type IndexFilter struct{}

var _ ObjectFilter = IndexFilter{}

// Bound implements ObjectFilter with Filter.
func (IndexFilter) Bound(store od.Store, o *od.OD) float64 {
	return Filter(store, o)
}

// ExactFilter is the literal Equation 9 filter (see FilterExact): exact
// but quadratic, for validation runs and small data.
type ExactFilter struct {
	ThetaTuple float64
}

var _ ObjectFilter = ExactFilter{}

// Bound implements ObjectFilter with FilterExact.
func (f ExactFilter) Bound(store od.Store, o *od.OD) float64 {
	return FilterExact(store, o, f.ThetaTuple)
}
