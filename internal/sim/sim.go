// Package sim implements DogmatiX's domain-independent similarity measure
// (Section 5 of the paper) and the object filter used for comparison
// reduction (Section 5.2).
//
// For a pair of object descriptions the measure proceeds per comparable
// real-world type (condition 1 of Sec. 5): OD tuple pairs with normalized
// edit distance strictly below θtuple are greedily matched one-to-one in
// ascending distance order into the similar set ODT≈ (Eq. 4); leftover
// comparable tuples are greedily matched one-to-one in *descending*
// distance order into the contradictory set ODT≠ (Eq. 7, the cities
// example); everything unmatched is non-specified and has no effect
// (condition 4). The final score is
//
//	sim = setSoftIDF(ODT≈) / (setSoftIDF(ODT≠) + setSoftIDF(ODT≈))
//
// with softIDF from Definition 8, supplied by the od.Store.
//
// For incremental detection the package also exposes replay traces:
// SimilarityTrace/FilterTrace record the occurrence-union sizes behind
// each softIDF term, and ReplayScore/ReplayFilter recompute a score or
// filter bound under a changed corpus size |ΩT| bit-identically —
// matching and tuple distances never depend on the store, so a pair or
// bound whose postings are untouched by an update needs only its trace.
package sim

import (
	"sort"
	"strconv"

	"repro/internal/od"
	"repro/internal/strdist"
)

// MatchedPair is one matched tuple pair together with its distance and
// softIDF contribution.
type MatchedPair struct {
	A, B od.Tuple
	Dist float64
	IDF  float64
}

// Result is the full breakdown of one pairwise comparison.
type Result struct {
	Similar       []MatchedPair // ODT≈
	Contradictory []MatchedPair // ODT≠
	SimilarIDF    float64       // setSoftIDF(ODT≈)
	ContraIDF     float64       // setSoftIDF(ODT≠)
	Score         float64       // Eq. 8; 0 when both sums are zero
}

// PairTrace records what one comparison took from the store: the
// occurrence-union sizes behind each matched pair's softIDF term, in
// accumulation order. The matching itself depends only on the two ODs'
// tuple values (edit distances, deterministic tie-breaks) — never on the
// store — so as long as neither OD's exact tuple postings change, the
// score under a different corpus size |ΩT| is ReplayScore(size, trace),
// bit-identical to recomputing Similarity from scratch. This is what
// lets the incremental pipeline patch untouched pairs in O(matches)
// instead of re-running the comparison. The type lives in od so the
// persisted trace segment (od.SaveTraces/LoadTraces) shares it.
type PairTrace = od.PairTrace

// SimilarityTrace is Similarity plus the pair's replay trace.
func SimilarityTrace(store od.Store, a, b *od.OD, thetaTuple float64) (Result, PairTrace) {
	var tr PairTrace
	res := similarity(store, a, b, thetaTuple, &tr)
	return res, tr
}

// ReplayScore recomputes a traced pair's score under a corpus of the
// given size, replaying the softIDF sums in the original accumulation
// order so the result is bit-identical to a fresh Similarity call.
func ReplayScore(size int, tr PairTrace) float64 {
	var simIDF, conIDF float64
	for _, u := range tr.SimU {
		simIDF += od.SoftIDFValue(size, int(u))
	}
	for _, u := range tr.ConU {
		conIDF += od.SoftIDFValue(size, int(u))
	}
	if simIDF+conIDF > 0 {
		return simIDF / (simIDF + conIDF)
	}
	return 0
}

// Similarity computes sim(a, b) per Section 5.1. Tuples with empty values
// are ignored entirely (they carry no data; see Condition 1). The measure
// is symmetric: arguments are ordered canonically before matching, so
// sim(a,b) == sim(b,a) bit for bit.
func Similarity(store od.Store, a, b *od.OD, thetaTuple float64) Result {
	return similarity(store, a, b, thetaTuple, nil)
}

func similarity(store od.Store, a, b *od.OD, thetaTuple float64, trace *PairTrace) Result {
	if b.ID < a.ID || (b.ID == a.ID && b.Object < a.Object) {
		a, b = b, a
	}
	type group struct {
		as, bs []od.Tuple
	}
	groups := map[string]*group{}
	var order []string
	for _, t := range a.NonEmptyTuples() {
		g, ok := groups[t.Type]
		if !ok {
			g = &group{}
			groups[t.Type] = g
			order = append(order, t.Type)
		}
		g.as = append(g.as, t)
	}
	for _, t := range b.NonEmptyTuples() {
		g, ok := groups[t.Type]
		if !ok {
			g = &group{}
			groups[t.Type] = g
			order = append(order, t.Type)
		}
		g.bs = append(g.bs, t)
	}
	sort.Strings(order) // deterministic across runs

	var res Result
	for _, typ := range order {
		g := groups[typ]
		if len(g.as) == 0 || len(g.bs) == 0 {
			continue // present on one side only: non-specified data
		}
		matchGroup(store, g.as, g.bs, thetaTuple, &res, trace)
	}
	for _, m := range res.Similar {
		res.SimilarIDF += m.IDF
	}
	for _, m := range res.Contradictory {
		res.ContraIDF += m.IDF
	}
	if res.SimilarIDF+res.ContraIDF > 0 {
		res.Score = res.SimilarIDF / (res.SimilarIDF + res.ContraIDF)
	}
	return res
}

// pairDist is a scored candidate pairing inside one comparable group.
type pairDist struct {
	i, j int
	dist float64
}

func matchGroup(store od.Store, as, bs []od.Tuple, thetaTuple float64, res *Result, trace *PairTrace) {
	// Full distance matrix; groups are small (element multiplicities).
	pairs := make([]pairDist, 0, len(as)*len(bs))
	for i, ta := range as {
		for j, tb := range bs {
			pairs = append(pairs, pairDist{i, j, strdist.Normalized(ta.Value, tb.Value)})
		}
	}

	usedA := make([]bool, len(as))
	usedB := make([]bool, len(bs))

	// idf resolves one matched pair's softIDF term. In trace mode the
	// union cardinality is fetched explicitly and the term recomputed
	// from it — bit-identical to store.SoftIDF by construction (see
	// od.SoftIDFValue) — so the union can be recorded for replay.
	idf := func(ta, tb od.Tuple, sink *[]int32) float64 {
		if trace == nil {
			return store.SoftIDF(ta, tb)
		}
		u := od.OccUnion(store, ta, tb)
		*sink = append(*sink, int32(u))
		return od.SoftIDFValue(store.Size(), u)
	}

	// Similar matching: ascending distance, 1:1.
	simPairs := filterPairs(pairs, func(p pairDist) bool { return p.dist < thetaTuple })
	sortPairs(simPairs, as, bs, true)
	for _, p := range simPairs {
		if usedA[p.i] || usedB[p.j] {
			continue
		}
		usedA[p.i] = true
		usedB[p.j] = true
		var sink *[]int32
		if trace != nil {
			sink = &trace.SimU
		}
		res.Similar = append(res.Similar, MatchedPair{
			A: as[p.i], B: bs[p.j], Dist: p.dist,
			IDF: idf(as[p.i], bs[p.j], sink),
		})
	}

	// Contradictory matching: descending distance over the leftovers, 1:1,
	// bounded by min leftover cardinality (the cities example).
	conPairs := filterPairs(pairs, func(p pairDist) bool {
		return !usedA[p.i] && !usedB[p.j]
	})
	sortPairs(conPairs, as, bs, false)
	for _, p := range conPairs {
		if usedA[p.i] || usedB[p.j] {
			continue
		}
		usedA[p.i] = true
		usedB[p.j] = true
		var sink *[]int32
		if trace != nil {
			sink = &trace.ConU
		}
		res.Contradictory = append(res.Contradictory, MatchedPair{
			A: as[p.i], B: bs[p.j], Dist: p.dist,
			IDF: idf(as[p.i], bs[p.j], sink),
		})
	}
}

func filterPairs(pairs []pairDist, keep func(pairDist) bool) []pairDist {
	out := make([]pairDist, 0, len(pairs))
	for _, p := range pairs {
		if keep(p) {
			out = append(out, p)
		}
	}
	return out
}

func sortPairs(pairs []pairDist, as, bs []od.Tuple, ascending bool) {
	sort.Slice(pairs, func(x, y int) bool {
		px, py := pairs[x], pairs[y]
		if px.dist != py.dist {
			if ascending {
				return px.dist < py.dist
			}
			return px.dist > py.dist
		}
		ax, ay := as[px.i], as[py.i]
		if ax.Value != ay.Value {
			return ax.Value < ay.Value
		}
		bx, by := bs[px.j], bs[py.j]
		if bx.Value != by.Value {
			return bx.Value < by.Value
		}
		if px.i != py.i {
			return px.i < py.i
		}
		return px.j < py.j
	})
}

// Classify implements the XML duplicate classifier of Definition 6:
// duplicates iff sim > θcand.
func Classify(score, thetaCand float64) bool {
	return score > thetaCand
}

// Filter computes the object filter f(ODi) of Section 5.2 from the store
// indexes, without touching any other OD pairwise: a tuple is *shared* when
// some other object holds an exact or θtuple-similar value of the same
// type (its contribution is the maximum softIDF over such matches, keeping
// f an upper bound of each pairwise numerator term), and *unique*
// otherwise (contribution softIDF of the tuple alone, which upper-bounds
// every contradictory-pair softIDF the tuple can generate).
//
//	f = setSoftIDF(shared) / (setSoftIDF(unique) + setSoftIDF(shared))
//
// Objects with f(ODi) <= θcand cannot reach sim > θcand against any
// partner that shares the paper's uniform-structure assumptions, and are
// pruned wholesale in Step 4. Note the unique-side term makes this filter
// slightly more aggressive than the paper's Sunique intersection when data
// is missing entirely (see FilterExact and DESIGN.md).
func Filter(store od.Store, o *od.OD) float64 {
	bound, _ := filter(store, o, false)
	return bound
}

// FilterStep is one non-empty tuple's contribution to a traced filter
// bound: whether the tuple was shared and the occurrence-union size its
// softIDF term derives from. A tuple's shared/unique status and its
// best-match union depend only on the postings of values θtuple-similar
// to the tuple — the softIDF argmax is the minimal union, independent of
// |ΩT| — so while none of those postings change, the bound under a new
// corpus size is ReplayFilter(size, steps), bit-identical to Filter.
// Shared with the persisted trace segment, hence defined in od.
type FilterStep = od.FilterStep

// FilterTrace is Filter plus the per-tuple replay trace.
func FilterTrace(store od.Store, o *od.OD) (float64, []FilterStep) {
	return filter(store, o, true)
}

// ReplayFilter recomputes a traced bound under a corpus of the given
// size, in the original accumulation order.
func ReplayFilter(size int, steps []FilterStep) float64 {
	var sharedIDF, uniqueIDF float64
	for _, st := range steps {
		if st.Shared {
			sharedIDF += od.SoftIDFValue(size, int(st.Union))
		} else {
			uniqueIDF += od.SoftIDFValue(size, int(st.Union))
		}
	}
	if sharedIDF+uniqueIDF == 0 {
		return 0
	}
	return sharedIDF / (sharedIDF + uniqueIDF)
}

func filter(store od.Store, o *od.OD, traced bool) (float64, []FilterStep) {
	var sharedIDF, uniqueIDF float64
	var steps []FilterStep
	size := store.Size()
	for _, t := range o.NonEmptyTuples() {
		best := -1.0
		bestU := int32(0)
		for _, m := range store.SimilarValues(t) {
			othered := false
			for _, obj := range m.Objects {
				if obj != o.ID {
					othered = true
					break
				}
			}
			if !othered {
				continue
			}
			u := od.OccUnion(store, t, od.Tuple{Value: m.Value, Type: t.Type})
			idf := od.SoftIDFValue(size, u)
			if idf > best {
				best = idf
				bestU = int32(u)
			}
		}
		if best >= 0 {
			sharedIDF += best
			if traced {
				steps = append(steps, FilterStep{Shared: true, Union: bestU})
			}
		} else {
			u := od.OccUnion(store, t, t)
			uniqueIDF += od.SoftIDFValue(size, u)
			if traced {
				steps = append(steps, FilterStep{Shared: false, Union: int32(u)})
			}
		}
	}
	if sharedIDF+uniqueIDF == 0 {
		return 0, steps
	}
	return sharedIDF / (sharedIDF + uniqueIDF), steps
}

// FilterExact computes f(ODi) literally as Equation 9 defines it, by
// evaluating ODT≈ and ODT≠ against every other object: Sshared collects,
// per tuple of ODi, the maximal similar-pair softIDF observed against any
// partner; Sunique collects the tuples that are contradictory to *every*
// other object (the intersection), each contributing its minimal observed
// contradictory-pair softIDF. This keeps f(ODi) >= sim(ODi, ODj) for all
// j (proof sketch in the package tests). Cost is one sim() per partner, so
// it exists for validation and small data; the pipeline uses Filter.
func FilterExact(store od.Store, o *od.OD, thetaTuple float64) float64 {
	n := store.Size()
	if n <= 1 {
		return 0
	}
	sharedMax := map[string]float64{} // tuple key -> max similar idf
	uniqueMin := map[string]float64{} // tuple key -> min contradictory idf
	alwaysCon := map[string]bool{}    // tuple key -> contradictory vs every j so far
	keys := map[string]int{}          // tuple key -> count (for init)
	keyOf := func(t od.Tuple, idx int) string {
		// index disambiguates duplicate tuples within the OD
		return t.Type + "\x00" + t.Value + "\x00" + t.Name + "\x00" + strconv.Itoa(idx)
	}
	tuples := o.NonEmptyTuples()
	for idx, t := range tuples {
		k := keyOf(t, idx)
		keys[k] = idx
		alwaysCon[k] = true
	}
	// FilterExact inherently visits every OD, so the materialized slice
	// beats per-id fetches: on a disk store, ODs() memoizes the full set
	// once instead of thrashing the fixed-size OD cache n times. On a
	// mutated store the slice spans the full ID space with nil slots at
	// removed IDs — skip those rather than index by the live count.
	for _, other := range store.ODs() {
		if other == nil || other.ID == o.ID {
			continue
		}
		res := Similarity(store, o, other, thetaTuple)
		// Similarity orders its arguments canonically by ID, so o's tuples
		// sit on the A side iff o has the lower ID.
		oTuple := func(m MatchedPair) od.Tuple {
			if o.ID < other.ID {
				return m.A
			}
			return m.B
		}
		inSimilar := map[string]bool{}
		inContra := map[string]float64{}
		for _, m := range res.Similar {
			k := findKey(tuples, oTuple(m), inSimilar, nil)
			if k != "" {
				inSimilar[k] = true
				if m.IDF > sharedMax[k] {
					sharedMax[k] = m.IDF
				}
			}
		}
		for _, m := range res.Contradictory {
			k := findKey(tuples, oTuple(m), inSimilar, inContra)
			if k != "" {
				inContra[k] = m.IDF
			}
		}
		for k := range keys {
			if inSimilar[k] {
				alwaysCon[k] = false
				continue
			}
			idf, contra := inContra[k]
			if !contra {
				alwaysCon[k] = false // non-specified vs this partner
				continue
			}
			if cur, ok := uniqueMin[k]; !ok || idf < cur {
				uniqueMin[k] = idf
			}
		}
	}
	var sharedIDF, uniqueIDF float64
	for _, v := range sharedMax {
		sharedIDF += v
	}
	for k, stillCon := range alwaysCon {
		if stillCon {
			uniqueIDF += uniqueMin[k]
		}
	}
	if sharedIDF+uniqueIDF == 0 {
		return 0
	}
	return sharedIDF / (sharedIDF + uniqueIDF)
}

// findKey locates the positional key of tuple t within tuples, skipping
// keys already claimed in the provided sets, so duplicate tuple values map
// to distinct slots.
func findKey(tuples []od.Tuple, t od.Tuple, claimed map[string]bool, claimedIDF map[string]float64) string {
	for idx, cand := range tuples {
		if cand.Type != t.Type || cand.Value != t.Value || cand.Name != t.Name {
			continue
		}
		k := cand.Type + "\x00" + cand.Value + "\x00" + cand.Name + "\x00" + strconv.Itoa(idx)
		if claimed != nil && claimed[k] {
			continue
		}
		if claimedIDF != nil {
			if _, ok := claimedIDF[k]; ok {
				continue
			}
		}
		return k
	}
	return ""
}
