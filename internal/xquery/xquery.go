// Package xquery implements the query-formulation component of Section
// 3.3: DogmatiX expresses its candidate and description queries as
// XQuery, and this package both *formulates* those queries from a
// candidate path plus a description selection σ, and *executes* a FLWOR
// subset over xmltree documents, so the formulated text is runnable, not
// just documentation.
//
// Supported grammar (whitespace-insensitive):
//
//	query   := "for" "$"var "in" path ("where" cond)? "return" expr
//	cond    := relpath "=" quoted | "contains(" relpath "," quoted ")"
//	expr    := element | relpath
//	element := "<" name ">" "{" relpath ("," relpath)* "}" "</" name ">"
//
// where path is an absolute XPath (optionally $doc-prefixed) and relpath
// is relative to the bound variable, written "$var/a/b" or "$var".
package xquery

import (
	"fmt"
	"strings"

	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Query is a parsed FLWOR query.
type Query struct {
	Var     string // variable name without '$'
	In      *xpath.Path
	Where   *Condition // nil when absent
	Return  Return
	rawText string
}

// Condition is a where-clause predicate on the bound variable.
type Condition struct {
	Path     *xpath.Path // relative to the variable
	Value    string
	Contains bool // contains(...) instead of equality
}

// Return is the return clause: either a constructed element wrapping
// projected paths, or a single projected path.
type Return struct {
	Element string // element constructor name; empty for a bare path
	Paths   []*xpath.Path
}

// String returns the query text.
func (q *Query) String() string { return q.rawText }

// Parse parses a query in the supported FLWOR subset.
func Parse(text string) (*Query, error) {
	q := &Query{rawText: strings.TrimSpace(text)}
	s := q.rawText

	word := func(w string) error {
		s = strings.TrimSpace(s)
		if !strings.HasPrefix(s, w) {
			return fmt.Errorf("xquery: expected %q at %q", w, truncate(s))
		}
		s = s[len(w):]
		return nil
	}

	if err := word("for"); err != nil {
		return nil, err
	}
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "$") {
		return nil, fmt.Errorf("xquery: expected variable at %q", truncate(s))
	}
	end := strings.IndexAny(s, " \t\n")
	if end < 0 {
		return nil, fmt.Errorf("xquery: unexpected end after variable")
	}
	q.Var = s[1:end]
	s = s[end:]

	if err := word("in"); err != nil {
		return nil, err
	}
	s = strings.TrimSpace(s)
	pathEnd := strings.Index(s, " ")
	if pathEnd < 0 {
		return nil, fmt.Errorf("xquery: query ends after 'in' path")
	}
	inPath, err := xpath.Parse(s[:pathEnd])
	if err != nil {
		return nil, err
	}
	q.In = inPath
	s = s[pathEnd:]

	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "where") {
		s = strings.TrimSpace(s[len("where"):])
		cond, rest, err := parseCondition(s, q.Var)
		if err != nil {
			return nil, err
		}
		q.Where = cond
		s = rest
	}

	if err := word("return"); err != nil {
		return nil, err
	}
	s = strings.TrimSpace(s)
	ret, rest, err := parseReturn(s, q.Var)
	if err != nil {
		return nil, err
	}
	if strings.TrimSpace(rest) != "" {
		return nil, fmt.Errorf("xquery: trailing input %q", truncate(rest))
	}
	q.Return = ret
	return q, nil
}

func parseCondition(s, varName string) (*Condition, string, error) {
	if strings.HasPrefix(s, "contains(") {
		body := s[len("contains("):]
		closeIdx := strings.IndexByte(body, ')')
		if closeIdx < 0 {
			return nil, "", fmt.Errorf("xquery: unterminated contains(")
		}
		inner := body[:closeIdx]
		rest := body[closeIdx+1:]
		parts := strings.SplitN(inner, ",", 2)
		if len(parts) != 2 {
			return nil, "", fmt.Errorf("xquery: contains needs two arguments")
		}
		p, err := varPath(strings.TrimSpace(parts[0]), varName)
		if err != nil {
			return nil, "", err
		}
		val, err := unquote(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, "", err
		}
		return &Condition{Path: p, Value: val, Contains: true}, rest, nil
	}
	eq := strings.IndexByte(s, '=')
	if eq < 0 {
		return nil, "", fmt.Errorf("xquery: unsupported where clause at %q", truncate(s))
	}
	p, err := varPath(strings.TrimSpace(s[:eq]), varName)
	if err != nil {
		return nil, "", err
	}
	rest := strings.TrimSpace(s[eq+1:])
	if rest == "" || (rest[0] != '\'' && rest[0] != '"') {
		return nil, "", fmt.Errorf("xquery: where value must be quoted")
	}
	quote := rest[0]
	closeIdx := strings.IndexByte(rest[1:], quote)
	if closeIdx < 0 {
		return nil, "", fmt.Errorf("xquery: unterminated string literal")
	}
	val := rest[1 : 1+closeIdx]
	return &Condition{Path: p, Value: val}, rest[closeIdx+2:], nil
}

func parseReturn(s, varName string) (Return, string, error) {
	if strings.HasPrefix(s, "<") {
		gt := strings.IndexByte(s, '>')
		if gt < 0 {
			return Return{}, "", fmt.Errorf("xquery: unterminated element constructor")
		}
		name := strings.TrimSpace(s[1:gt])
		rest := strings.TrimSpace(s[gt+1:])
		if !strings.HasPrefix(rest, "{") {
			return Return{}, "", fmt.Errorf("xquery: element constructor needs { projections }")
		}
		closeIdx := strings.IndexByte(rest, '}')
		if closeIdx < 0 {
			return Return{}, "", fmt.Errorf("xquery: unterminated projection block")
		}
		var paths []*xpath.Path
		for _, part := range strings.Split(rest[1:closeIdx], ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			p, err := varPath(part, varName)
			if err != nil {
				return Return{}, "", err
			}
			paths = append(paths, p)
		}
		rest = strings.TrimSpace(rest[closeIdx+1:])
		closing := "</" + name + ">"
		if !strings.HasPrefix(rest, closing) {
			return Return{}, "", fmt.Errorf("xquery: expected %s", closing)
		}
		return Return{Element: name, Paths: paths}, rest[len(closing):], nil
	}
	// bare path return
	end := strings.IndexAny(s, " \t\n")
	tok := s
	rest := ""
	if end >= 0 {
		tok, rest = s[:end], s[end:]
	}
	p, err := varPath(tok, varName)
	if err != nil {
		return Return{}, "", err
	}
	return Return{Paths: []*xpath.Path{p}}, rest, nil
}

// varPath parses "$v/a/b" (or "$v") into a relative xpath.
func varPath(s, varName string) (*xpath.Path, error) {
	prefix := "$" + varName
	if !strings.HasPrefix(s, prefix) {
		return nil, fmt.Errorf("xquery: path %q must start with $%s", s, varName)
	}
	rel := strings.TrimPrefix(s, prefix)
	if rel == "" {
		return xpath.Parse(".")
	}
	if !strings.HasPrefix(rel, "/") {
		return nil, fmt.Errorf("xquery: malformed variable path %q", s)
	}
	return xpath.Parse("." + rel)
}

func unquote(s string) (string, error) {
	if len(s) < 2 || (s[0] != '\'' && s[0] != '"') || s[len(s)-1] != s[0] {
		return "", fmt.Errorf("xquery: expected quoted string, got %q", s)
	}
	return s[1 : len(s)-1], nil
}

func truncate(s string) string {
	s = strings.TrimSpace(s)
	if len(s) > 24 {
		return s[:24] + "..."
	}
	return s
}

// Eval runs the query against a document. For each binding of the for
// variable it evaluates the optional where clause and materializes the
// return clause; constructed elements clone the projected nodes.
func (q *Query) Eval(doc *xmltree.Document) []*xmltree.Node {
	var out []*xmltree.Node
	for _, binding := range q.In.Eval(doc.Root) {
		if q.Where != nil && !q.Where.matches(binding) {
			continue
		}
		if q.Return.Element == "" {
			out = append(out, q.Return.Paths[0].Eval(binding)...)
			continue
		}
		wrapper := xmltree.NewNode(q.Return.Element)
		for _, n := range xpath.EvalAll(q.Return.Paths, binding) {
			wrapper.AppendChild(n.Clone())
		}
		out = append(out, wrapper)
	}
	return out
}

func (c *Condition) matches(binding *xmltree.Node) bool {
	for _, n := range c.Path.Eval(binding) {
		if c.Contains {
			if strings.Contains(n.Text, c.Value) {
				return true
			}
		} else if n.Text == c.Value {
			return true
		}
	}
	return false
}

// FormulateCandidate renders the Step 1 candidate query QC for a
// candidate schema path (Sec. 3.4).
func FormulateCandidate(candidatePath string) string {
	return fmt.Sprintf("for $c in $doc%s return $c", strings.TrimPrefix(candidatePath, "$doc"))
}

// FormulateDescription renders the Step 2 description query QD: a FLWOR
// query projecting the selection σ (relative XPaths) of each candidate
// into a <description> element, exactly the shape Sec. 3.3's composition
// tool produces.
func FormulateDescription(candidatePath string, sigma []string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "for $c in $doc%s return <description> { ",
		strings.TrimPrefix(candidatePath, "$doc"))
	for i, rel := range sigma {
		if i > 0 {
			sb.WriteString(", ")
		}
		rel = strings.TrimPrefix(rel, "./")
		if rel == "." {
			sb.WriteString("$c")
			continue
		}
		fmt.Fprintf(&sb, "$c/%s", rel)
	}
	sb.WriteString(" } </description>")
	return sb.String()
}
