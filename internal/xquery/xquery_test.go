package xquery

import (
	"strings"
	"testing"

	"repro/internal/xmltree"
)

const doc = `<moviedoc>
  <movie>
    <title>The Matrix</title>
    <year>1999</year>
    <actor><name>Keanu Reeves</name></actor>
    <actor><name>L. Fishburne</name></actor>
  </movie>
  <movie>
    <title>Signs</title>
    <year>2002</year>
    <actor><name>Mel Gibson</name></actor>
  </movie>
</moviedoc>`

func parseDoc(t *testing.T) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustParse(t *testing.T, text string) *Query {
	t.Helper()
	q, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse(%q): %v", text, err)
	}
	return q
}

func TestCandidateQuery(t *testing.T) {
	q := mustParse(t, "for $c in $doc/moviedoc/movie return $c")
	got := q.Eval(parseDoc(t))
	if len(got) != 2 || got[0].Name != "movie" {
		t.Fatalf("eval = %d nodes", len(got))
	}
}

func TestDescriptionQuery(t *testing.T) {
	q := mustParse(t,
		"for $m in $doc/moviedoc/movie return <description> { $m/title, $m/year, $m/actor/name } </description>")
	got := q.Eval(parseDoc(t))
	if len(got) != 2 {
		t.Fatalf("descriptions = %d", len(got))
	}
	first := got[0]
	if first.Name != "description" {
		t.Errorf("wrapper = %s", first.Name)
	}
	if n := len(first.Children); n != 4 { // title, year, 2 names
		t.Errorf("projected children = %d, want 4: %s", n, first)
	}
	if first.Child("title").Text != "The Matrix" {
		t.Errorf("title = %q", first.Child("title").Text)
	}
	// projections are clones: mutating them must not touch the document
	first.Child("title").Text = "MUTATED"
	if parseDoc(t).Root.Children[0].Child("title").Text == "MUTATED" {
		t.Error("projection aliased the source document")
	}
}

func TestWhereEquality(t *testing.T) {
	q := mustParse(t,
		`for $m in $doc/moviedoc/movie where $m/year = '1999' return $m/title`)
	got := q.Eval(parseDoc(t))
	if len(got) != 1 || got[0].Text != "The Matrix" {
		t.Fatalf("filtered = %v", texts(got))
	}
}

func TestWhereContains(t *testing.T) {
	q := mustParse(t,
		`for $m in $doc/moviedoc/movie where contains($m/actor/name, 'Gibson') return $m/title`)
	got := q.Eval(parseDoc(t))
	if len(got) != 1 || got[0].Text != "Signs" {
		t.Fatalf("filtered = %v", texts(got))
	}
}

func TestSelfProjection(t *testing.T) {
	q := mustParse(t,
		"for $m in $doc/moviedoc/movie return <wrap> { $m } </wrap>")
	got := q.Eval(parseDoc(t))
	if len(got) != 2 || got[0].Child("movie") == nil {
		t.Fatalf("self projection = %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"return $c",
		"for c in /a return $c",
		"for $c in /a",
		"for $c in /a return $x/b",
		"for $c in /a where $c/b return $c",
		"for $c in /a where $c/b = unquoted return $c",
		"for $c in /a return <d> { $c/b }",
		"for $c in /a return <d> { $c/b } </e>",
		"for $c in /a return $c trailing",
		"for $c in /a where contains($c/b) return $c",
	}
	for _, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", text)
		}
	}
}

func TestFormulateCandidate(t *testing.T) {
	got := FormulateCandidate("$doc/moviedoc/movie")
	want := "for $c in $doc/moviedoc/movie return $c"
	if got != want {
		t.Errorf("FormulateCandidate = %q", got)
	}
	// formulated text must parse and run
	q := mustParse(t, got)
	if n := len(q.Eval(parseDoc(t))); n != 2 {
		t.Errorf("formulated candidate query found %d", n)
	}
}

func TestFormulateDescriptionRoundTrip(t *testing.T) {
	sigma := []string{"./title", "./year", "./actor/name"}
	text := FormulateDescription("/moviedoc/movie", sigma)
	if !strings.Contains(text, "<description>") {
		t.Fatalf("formulated = %q", text)
	}
	q := mustParse(t, text)
	got := q.Eval(parseDoc(t))
	if len(got) != 2 {
		t.Fatalf("descriptions = %d", len(got))
	}
	if got[1].Child("name").Text != "Mel Gibson" {
		t.Errorf("second description = %s", got[1])
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	text := "for $m in $doc/moviedoc/movie return <d> { $m/title } </d>"
	q := mustParse(t, text)
	if q.String() != text {
		t.Errorf("String = %q", q.String())
	}
	q2 := mustParse(t, q.String())
	if len(q2.Eval(parseDoc(t))) != 2 {
		t.Error("re-parsed query behaves differently")
	}
}

func texts(nodes []*xmltree.Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Text
	}
	return out
}
