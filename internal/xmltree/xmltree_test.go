package xmltree

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

const movieDoc = `<?xml version="1.0"?>
<moviedoc>
  <movie>
    <title>The Matrix</title>
    <year>1999</year>
    <actor><name>Keanu Reeves</name><role>Neo</role></actor>
    <actor><name>L. Fishburne</name><role>Morpheus</role></actor>
  </movie>
  <movie>
    <title>Matrix</title>
    <year>1999</year>
    <actor><name>Keanu Reeves</name><role>The One</role></actor>
  </movie>
  <movie>
    <title>Signs</title>
    <year>2002</year>
    <actor><name>Mel Gibson</name><role>Graham Hess</role></actor>
  </movie>
</moviedoc>`

func mustParse(t *testing.T, s string) *Document {
	t.Helper()
	doc, err := ParseString(s)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	return doc
}

func TestParseBasic(t *testing.T) {
	doc := mustParse(t, movieDoc)
	if doc.Root.Name != "moviedoc" {
		t.Fatalf("root = %q, want moviedoc", doc.Root.Name)
	}
	movies := doc.Root.ChildrenNamed("movie")
	if len(movies) != 3 {
		t.Fatalf("got %d movies, want 3", len(movies))
	}
	if got := movies[0].Child("title").Text; got != "The Matrix" {
		t.Errorf("title = %q, want The Matrix", got)
	}
	if got := movies[1].Child("year").Text; got != "1999" {
		t.Errorf("year = %q, want 1999", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"unclosed", "<a><b></b>"},
		{"garbage", "not xml at all <"},
		{"mismatched", "<a></b>"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseString(tc.in); err == nil {
				t.Errorf("ParseString(%q) succeeded, want error", tc.in)
			}
		})
	}
}

func TestParseAttributes(t *testing.T) {
	doc := mustParse(t, `<a id="1" kind="x &amp; y"><b/></a>`)
	if v, ok := doc.Root.Attr("id"); !ok || v != "1" {
		t.Errorf("attr id = %q,%v", v, ok)
	}
	if v, ok := doc.Root.Attr("kind"); !ok || v != "x & y" {
		t.Errorf("attr kind = %q,%v", v, ok)
	}
	if _, ok := doc.Root.Attr("missing"); ok {
		t.Error("found attribute that does not exist")
	}
}

func TestTextTrimmingAndConcat(t *testing.T) {
	doc := mustParse(t, "<a>\n   hello \n</a>")
	if doc.Root.Text != "hello" {
		t.Errorf("text = %q, want hello", doc.Root.Text)
	}
}

func TestPathAndSchemaPath(t *testing.T) {
	doc := mustParse(t, movieDoc)
	movies := doc.Root.ChildrenNamed("movie")
	first := movies[0]
	if got := first.Path(); got != "/moviedoc/movie[1]" {
		t.Errorf("Path = %q", got)
	}
	if got := first.SchemaPath(); got != "/moviedoc/movie" {
		t.Errorf("SchemaPath = %q", got)
	}
	actor2 := movies[0].ChildrenNamed("actor")[1]
	if got := actor2.Path(); got != "/moviedoc/movie[1]/actor[2]" {
		t.Errorf("actor path = %q", got)
	}
	name := actor2.Child("name")
	if got := name.SchemaPath(); got != "/moviedoc/movie/actor/name" {
		t.Errorf("name schema path = %q", got)
	}
	// single-child steps carry no positional predicate
	title := movies[2].Child("title")
	if got := title.Path(); got != "/moviedoc/movie[3]/title" {
		t.Errorf("title path = %q", got)
	}
}

func TestRelativeSchemaPath(t *testing.T) {
	doc := mustParse(t, movieDoc)
	movie := doc.Root.ChildrenNamed("movie")[0]
	name := movie.ChildrenNamed("actor")[0].Child("name")
	if p, ok := name.RelativeSchemaPath(movie); !ok || p != "./actor/name" {
		t.Errorf("rel path = %q,%v", p, ok)
	}
	if p, ok := movie.RelativeSchemaPath(movie); !ok || p != "." {
		t.Errorf("self rel path = %q,%v", p, ok)
	}
	other := doc.Root.ChildrenNamed("movie")[1]
	if _, ok := name.RelativeSchemaPath(other); ok {
		t.Error("RelativeSchemaPath against non-ancestor should fail")
	}
}

func TestDepthAndAncestors(t *testing.T) {
	doc := mustParse(t, movieDoc)
	name := doc.Root.ChildrenNamed("movie")[0].ChildrenNamed("actor")[0].Child("name")
	if d := name.Depth(); d != 3 {
		t.Errorf("depth = %d, want 3", d)
	}
	anc := name.Ancestors(0)
	if len(anc) != 3 || anc[0].Name != "actor" || anc[2].Name != "moviedoc" {
		t.Errorf("ancestors = %v", nodeNames(anc))
	}
	if got := name.Ancestors(2); len(got) != 2 {
		t.Errorf("limited ancestors = %d, want 2", len(got))
	}
	if name.Root() != doc.Root {
		t.Error("Root() did not return document root")
	}
}

func TestDescendants(t *testing.T) {
	doc := mustParse(t, movieDoc)
	movie := doc.Root.ChildrenNamed("movie")[0]
	all := movie.Descendants()
	// title, year, actor, name, role, actor, name, role
	if len(all) != 8 {
		t.Errorf("descendants = %d, want 8", len(all))
	}
	lvl1 := movie.DescendantsAtDepth(1)
	if got := nodeNames(lvl1); !reflect.DeepEqual(got, []string{"title", "year", "actor", "actor"}) {
		t.Errorf("depth-1 = %v", got)
	}
	lvl2 := movie.DescendantsAtDepth(2)
	if got := nodeNames(lvl2); !reflect.DeepEqual(got, []string{"name", "role", "name", "role"}) {
		t.Errorf("depth-2 = %v", got)
	}
	if got := movie.DescendantsAtDepth(3); len(got) != 0 {
		t.Errorf("depth-3 = %v, want empty", nodeNames(got))
	}
	if got := movie.DescendantsAtDepth(0); got != nil {
		t.Errorf("depth-0 = %v, want nil", got)
	}
}

func TestBreadthFirst(t *testing.T) {
	doc := mustParse(t, `<r><a><c/><d/></a><b><e/></b></r>`)
	got := nodeNames(doc.Root.BreadthFirst(0))
	want := []string{"a", "b", "c", "d", "e"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("bfs = %v, want %v", got, want)
	}
	if got := nodeNames(doc.Root.BreadthFirst(3)); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("bfs(3) = %v", got)
	}
}

func TestWalkSkipsSubtree(t *testing.T) {
	doc := mustParse(t, `<r><a><c/></a><b/></r>`)
	var visited []string
	doc.Root.Walk(func(n *Node) bool {
		visited = append(visited, n.Name)
		return n.Name != "a" // skip below a
	})
	want := []string{"r", "a", "b"}
	if !reflect.DeepEqual(visited, want) {
		t.Errorf("visited = %v, want %v", visited, want)
	}
}

func TestCloneIsDeepAndDetached(t *testing.T) {
	doc := mustParse(t, movieDoc)
	movie := doc.Root.ChildrenNamed("movie")[0]
	cp := movie.Clone()
	if cp.Parent != nil {
		t.Error("clone should be detached")
	}
	cp.Child("title").Text = "CHANGED"
	if movie.Child("title").Text == "CHANGED" {
		t.Error("clone shares state with original")
	}
	if cp.CountNodes() != movie.CountNodes() {
		t.Errorf("clone size %d != original %d", cp.CountNodes(), movie.CountNodes())
	}
}

func TestRemoveChildRenumbers(t *testing.T) {
	doc := mustParse(t, `<r><x>1</x><x>2</x><x>3</x></r>`)
	xs := doc.Root.ChildrenNamed("x")
	if !doc.Root.RemoveChild(xs[1]) {
		t.Fatal("RemoveChild failed")
	}
	left := doc.Root.ChildrenNamed("x")
	if len(left) != 2 {
		t.Fatalf("got %d children", len(left))
	}
	if got := left[1].Path(); got != "/r/x[2]" {
		t.Errorf("renumbered path = %q", got)
	}
	if doc.Root.RemoveChild(xs[1]) {
		t.Error("removing twice should fail")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	doc := mustParse(t, movieDoc)
	out := doc.String()
	doc2, err := ParseString(out)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if !treesEqual(doc.Root, doc2.Root) {
		t.Errorf("round trip changed the tree:\n%s\nvs\n%s", out, doc2.String())
	}
}

func TestSerializationEscaping(t *testing.T) {
	n := NewTextNode("a", "x < y & z")
	n.SetAttr("q", `say "hi" & <bye>`)
	out := n.String()
	doc, err := ParseString(out)
	if err != nil {
		t.Fatalf("re-parse escaped output %q: %v", out, err)
	}
	if doc.Root.Text != "x < y & z" {
		t.Errorf("text = %q", doc.Root.Text)
	}
	if v, _ := doc.Root.Attr("q"); v != `say "hi" & <bye>` {
		t.Errorf("attr = %q", v)
	}
}

func TestSetAttrReplaces(t *testing.T) {
	n := NewNode("a")
	n.SetAttr("k", "1")
	n.SetAttr("k", "2")
	if len(n.Attrs) != 1 {
		t.Fatalf("attrs = %d, want 1", len(n.Attrs))
	}
	if v, _ := n.Attr("k"); v != "2" {
		t.Errorf("attr = %q, want 2", v)
	}
}

func TestTextContentAndElementNames(t *testing.T) {
	doc := mustParse(t, `<r><a>one</a><b><c>two</c></b></r>`)
	if got := doc.Root.TextContent(); got != "one two" {
		t.Errorf("TextContent = %q", got)
	}
	names := doc.Root.ElementNames()
	if !reflect.DeepEqual(names, []string{"a", "b", "c", "r"}) {
		t.Errorf("ElementNames = %v", names)
	}
}

func TestMultipleRootsRejected(t *testing.T) {
	if _, err := ParseString("<a></a><b></b>"); err == nil {
		t.Error("multiple roots accepted")
	}
}

// Property: building a random tree, serializing, and re-parsing yields an
// equal tree.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := randomTree(rng, 0)
		doc := &Document{Root: root}
		doc2, err := ParseString(doc.String())
		if err != nil {
			return false
		}
		return treesEqual(root, doc2.Root)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Path() of every node resolves uniquely within the tree.
func TestQuickPathsUnique(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := randomTree(rng, 0)
		seen := map[string]bool{}
		ok := true
		root.Walk(func(n *Node) bool {
			p := n.Path()
			if seen[p] {
				ok = false
			}
			seen[p] = true
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func randomTree(rng *rand.Rand, depth int) *Node {
	names := []string{"a", "b", "c", "d"}
	n := NewNode(names[rng.Intn(len(names))])
	if rng.Intn(2) == 0 {
		n.Text = randomText(rng)
	}
	if depth < 3 {
		for i := 0; i < rng.Intn(4); i++ {
			n.AppendChild(randomTree(rng, depth+1))
		}
	}
	return n
}

func randomText(rng *rand.Rand) string {
	words := []string{"alpha", "beta", "x<y", "a&b", "gamma"}
	k := rng.Intn(3) + 1
	var parts []string
	for i := 0; i < k; i++ {
		parts = append(parts, words[rng.Intn(len(words))])
	}
	return strings.Join(parts, " ")
}

func treesEqual(a, b *Node) bool {
	if a.Name != b.Name || a.Text != b.Text || len(a.Children) != len(b.Children) || len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return false
		}
	}
	for i := range a.Children {
		if !treesEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

func nodeNames(nodes []*Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Name
	}
	return out
}

// TestParseDropsCommentsAndPIs pins the document model's normalization:
// comments, processing instructions and the XML declaration leave no
// trace in the tree — neither as nodes nor as text. The streaming scanner
// (internal/xmlstream) is asserted token-for-token against this behavior.
func TestParseDropsCommentsAndPIs(t *testing.T) {
	doc, err := ParseString(`<?xml version="1.0"?>
<!-- top comment -->
<a>
  <?target data?>
  <b>x<!-- inline -->y</b>
  <!-- between -->
  <c/>
</a>
<!-- trailing comment -->`)
	if err != nil {
		t.Fatal(err)
	}
	if got := nodeNames(doc.Root.Children); !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Fatalf("children = %v, want [b c]", got)
	}
	// Character data around an inline comment concatenates: the comment
	// itself contributes nothing.
	if got := doc.Root.Child("b").Text; got != "xy" {
		t.Errorf("b text = %q, want %q", got, "xy")
	}
	if got := doc.Root.Text; got != "" {
		t.Errorf("root text = %q, want empty (PIs and comments drop)", got)
	}
}

// TestParseMergesCDATA pins CDATA handling: section boundaries vanish and
// their raw content merges into the surrounding character data before the
// trim at element close.
func TestParseMergesCDATA(t *testing.T) {
	doc, err := ParseString(`<a><b>one <![CDATA[<two> & three]]> four</b><c><![CDATA[  only  ]]></c></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.Root.Child("b").Text; got != "one <two> & three four" {
		t.Errorf("b text = %q", got)
	}
	// Leading/trailing whitespace trims even when it came from CDATA.
	if got := doc.Root.Child("c").Text; got != "only" {
		t.Errorf("c text = %q, want %q", got, "only")
	}
}

// TestFromStartElement pins the shared element-conversion policy: local
// names win, xmlns declarations drop, other attributes keep local names.
func TestFromStartElement(t *testing.T) {
	doc, err := ParseString(`<a xmlns="http://d" xmlns:p="http://p" p:id="1" name="n"/>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Root.Attrs) != 2 {
		t.Fatalf("attrs = %+v, want id and name only", doc.Root.Attrs)
	}
	if v, ok := doc.Root.Attr("id"); !ok || v != "1" {
		t.Errorf("id attr = %q, %v", v, ok)
	}
}
