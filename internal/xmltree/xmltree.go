// Package xmltree provides a lightweight in-memory XML document model used
// by every other DogmatiX subsystem. It supports parsing from any io.Reader
// via encoding/xml, navigation along the axes the paper's heuristics need
// (children, descendants, parents, ancestors, breadth-first order), absolute
// and schema-level paths, and serialization back to XML.
//
// The model deliberately keeps only what duplicate detection needs: element
// nodes with attributes and a text value. Comments, processing instructions
// and CDATA boundaries are dropped; character data is concatenated and
// whitespace-trimmed into Node.Text.
package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Node is a single XML element. Text holds the concatenated, trimmed
// character data directly inside the element (not including descendants).
type Node struct {
	Name     string
	Attrs    []Attr
	Text     string
	Parent   *Node
	Children []*Node

	// pos is the 1-based index among same-named siblings, set during
	// parsing/building and used for positional XPaths.
	pos int
}

// Attr is a single XML attribute.
type Attr struct {
	Name  string
	Value string
}

// Document is a parsed XML document with a single root element.
type Document struct {
	Root *Node
}

// FromStartElement builds a detached Node from an encoding/xml start
// token, applying the model's attribute policy: namespace declarations
// (xmlns and xmlns:*) are dropped, all other attributes keep their local
// name. Parse and the streaming scanner (internal/xmlstream) share this
// conversion so both produce identical nodes for the same token stream.
func FromStartElement(t xml.StartElement) *Node {
	n := &Node{Name: t.Name.Local}
	for _, a := range t.Attr {
		if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
			continue
		}
		n.Attrs = append(n.Attrs, Attr{Name: a.Name.Local, Value: a.Value})
	}
	return n
}

// Parse reads an XML document from r and builds its tree.
func Parse(r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	var root *Node
	var stack []*Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := FromStartElement(t)
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmltree: parse: multiple root elements")
				}
				root = n
			} else {
				stack[len(stack)-1].AppendChild(n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: parse: unbalanced end element %s", t.Name.Local)
			}
			top := stack[len(stack)-1]
			top.Text = strings.TrimSpace(top.Text)
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				stack[len(stack)-1].Text += string(t)
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmltree: parse: empty document")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: parse: unclosed element %s", stack[len(stack)-1].Name)
	}
	return &Document{Root: root}, nil
}

// ParseString is a convenience wrapper around Parse.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// NewNode builds a detached element node.
func NewNode(name string) *Node {
	return &Node{Name: name}
}

// NewTextNode builds a detached element node with text content.
func NewTextNode(name, text string) *Node {
	return &Node{Name: name, Text: text}
}

// AppendChild attaches child as the last child of n and maintains the
// positional index used by Path.
func (n *Node) AppendChild(child *Node) *Node {
	child.Parent = n
	child.pos = 1
	for _, c := range n.Children {
		if c.Name == child.Name {
			child.pos++
		}
	}
	n.Children = append(n.Children, child)
	return child
}

// SetAttr sets (or replaces) an attribute on n.
func (n *Node) SetAttr(name, value string) {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs[i].Value = value
			return
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
}

// Attr returns the value of the named attribute and whether it exists.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// Child returns the first direct child with the given name, or nil.
func (n *Node) Child(name string) *Node {
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ChildrenNamed returns all direct children with the given name.
func (n *Node) ChildrenNamed(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// Depth returns the number of ancestors of n (root has depth 0).
func (n *Node) Depth() int {
	d := 0
	for p := n.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// Root returns the topmost ancestor of n.
func (n *Node) Root() *Node {
	r := n
	for r.Parent != nil {
		r = r.Parent
	}
	return r
}

// Ancestors returns the ancestors of n from parent outward, at most limit
// entries (limit <= 0 means all).
func (n *Node) Ancestors(limit int) []*Node {
	var out []*Node
	for p := n.Parent; p != nil; p = p.Parent {
		out = append(out, p)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Descendants returns all descendants of n in document (pre-)order.
func (n *Node) Descendants() []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(m *Node) {
		for _, c := range m.Children {
			out = append(out, c)
			walk(c)
		}
	}
	walk(n)
	return out
}

// DescendantsAtDepth returns the descendants exactly depth levels below n
// (depth 1 = direct children).
func (n *Node) DescendantsAtDepth(depth int) []*Node {
	if depth <= 0 {
		return nil
	}
	level := []*Node{n}
	for d := 0; d < depth; d++ {
		var next []*Node
		for _, m := range level {
			next = append(next, m.Children...)
		}
		level = next
		if len(level) == 0 {
			break
		}
	}
	return level
}

// BreadthFirst returns the descendants of n in breadth-first order, at most
// limit entries (limit <= 0 means all). n itself is not included.
func (n *Node) BreadthFirst(limit int) []*Node {
	var out []*Node
	queue := append([]*Node(nil), n.Children...)
	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]
		out = append(out, m)
		if limit > 0 && len(out) >= limit {
			return out
		}
		queue = append(queue, m.Children...)
	}
	return out
}

// Walk calls fn for n and every descendant in document order. If fn returns
// false the subtree below the node is skipped.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Path returns the absolute, positionally qualified XPath of n, e.g.
// /moviedoc/movie[2]/actor[1]/name. Position predicates are included only
// for elements with same-named siblings.
func (n *Node) Path() string {
	var parts []string
	for m := n; m != nil; m = m.Parent {
		step := m.Name
		if m.Parent != nil && len(m.Parent.ChildrenNamed(m.Name)) > 1 {
			step = fmt.Sprintf("%s[%d]", m.Name, m.pos)
		}
		parts = append(parts, step)
	}
	reverse(parts)
	return "/" + strings.Join(parts, "/")
}

// SchemaPath returns the absolute path of n without positional predicates,
// e.g. /moviedoc/movie/actor/name. This is the "name" component of OD
// tuples and the key used to look up real-world types in mapping M.
func (n *Node) SchemaPath() string {
	var parts []string
	for m := n; m != nil; m = m.Parent {
		parts = append(parts, m.Name)
	}
	reverse(parts)
	return "/" + strings.Join(parts, "/")
}

// RelativeSchemaPath returns n's schema path relative to ancestor, in the
// "./a/b" form the paper uses for selections σ. If ancestor is not an
// ancestor of n (or n itself), ok is false.
func (n *Node) RelativeSchemaPath(ancestor *Node) (path string, ok bool) {
	var parts []string
	for m := n; m != nil; m = m.Parent {
		if m == ancestor {
			reverse(parts)
			if len(parts) == 0 {
				return ".", true
			}
			return "./" + strings.Join(parts, "/"), true
		}
		parts = append(parts, m.Name)
	}
	return "", false
}

// Clone deep-copies the subtree rooted at n. The clone is detached.
func (n *Node) Clone() *Node {
	cp := &Node{Name: n.Name, Text: n.Text, pos: n.pos}
	cp.Attrs = append([]Attr(nil), n.Attrs...)
	for _, c := range n.Children {
		cc := c.Clone()
		cc.Parent = cp
		cp.Children = append(cp.Children, cc)
	}
	return cp
}

// RemoveChild detaches child from n and renumbers sibling positions.
// It reports whether the child was found.
func (n *Node) RemoveChild(child *Node) bool {
	for i, c := range n.Children {
		if c == child {
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
			child.Parent = nil
			n.renumber(child.Name)
			return true
		}
	}
	return false
}

func (n *Node) renumber(name string) {
	pos := 0
	for _, c := range n.Children {
		if c.Name == name {
			pos++
			c.pos = pos
		}
	}
}

// CountNodes returns the number of elements in the subtree rooted at n,
// including n itself.
func (n *Node) CountNodes() int {
	count := 0
	n.Walk(func(*Node) bool { count++; return true })
	return count
}

// WriteXML serializes the subtree rooted at n as indented XML.
func (n *Node) WriteXML(w io.Writer) error {
	return n.write(w, 0)
}

func (n *Node) write(w io.Writer, depth int) error {
	ind := strings.Repeat("  ", depth)
	var attrs strings.Builder
	for _, a := range n.Attrs {
		fmt.Fprintf(&attrs, " %s=\"%s\"", a.Name, escapeAttr(a.Value))
	}
	if len(n.Children) == 0 && n.Text == "" {
		_, err := fmt.Fprintf(w, "%s<%s%s/>\n", ind, n.Name, attrs.String())
		return err
	}
	if len(n.Children) == 0 {
		_, err := fmt.Fprintf(w, "%s<%s%s>%s</%s>\n", ind, n.Name, attrs.String(), escapeText(n.Text), n.Name)
		return err
	}
	if _, err := fmt.Fprintf(w, "%s<%s%s>", ind, n.Name, attrs.String()); err != nil {
		return err
	}
	if n.Text != "" {
		if _, err := io.WriteString(w, escapeText(n.Text)); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := c.write(w, depth+1); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s</%s>\n", ind, n.Name)
	return err
}

// String renders the subtree as XML text.
func (n *Node) String() string {
	var sb strings.Builder
	_ = n.WriteXML(&sb)
	return sb.String()
}

// WriteXML serializes the document with an XML declaration.
func (d *Document) WriteXML(w io.Writer) error {
	if _, err := io.WriteString(w, "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"); err != nil {
		return err
	}
	return d.Root.WriteXML(w)
}

// String renders the document as XML text.
func (d *Document) String() string {
	var sb strings.Builder
	_ = d.WriteXML(&sb)
	return sb.String()
}

// TextContent returns the concatenation of all text in the subtree, in
// document order, separated by single spaces. Useful for naive baselines.
func (n *Node) TextContent() string {
	var parts []string
	n.Walk(func(m *Node) bool {
		if m.Text != "" {
			parts = append(parts, m.Text)
		}
		return true
	})
	return strings.Join(parts, " ")
}

// ElementNames returns the sorted set of distinct element names in the
// subtree rooted at n.
func (n *Node) ElementNames() []string {
	seen := map[string]bool{}
	n.Walk(func(m *Node) bool { seen[m.Name] = true; return true })
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func escapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

func escapeAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", "\"", "&quot;")
	return r.Replace(s)
}

func reverse(s []string) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
