// Package xmlstream is the streaming ingestion layer under the DogmatiX
// pipeline: a pull parser over encoding/xml token events that recognizes
// candidate anchors — elements whose absolute schema path matches one of
// the compiled Step 1 candidate paths — and materializes only the bounded
// subtree each anchor spans. The caller pulls one Anchor at a time,
// flattens it into an object description and drops it, so peak live heap
// is bounded by the largest anchor subtree (plus per-path counters), not
// by document size.
//
// The scanner accepts exactly the documents xmltree.Parse accepts and
// materializes bit-identical subtrees: both share xmltree.FromStartElement
// for element/attribute conversion, both concatenate raw character data
// (CDATA included) and trim it at element close, and both skip comments,
// processing instructions and directives.
//
// Positional paths: an anchor's positionally qualified XPath (the
// candidate's identity in results, e.g. /freedb/disc[7]) needs the total
// number of same-named siblings at every step — which a single forward
// pass only knows once the enclosing element has closed. Scanner therefore
// keeps one shared counter per (open ancestor instance, child name) on
// target chains, and Anchor.Path defers rendering against those counters;
// call it only after the scan has reached EOF, when every counter is
// final.
package xmlstream

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"repro/internal/xmltree"
)

// step is one location step of an anchor's positional path. count points
// at the parent instance's sibling counter for this name; it is nil for
// the root step, which never takes a predicate.
type step struct {
	name  string
	pos   int
	count *int
}

// Anchor is one candidate subtree pulled from the stream.
type Anchor struct {
	// Target is the index of the matched path in the NewScanner targets.
	Target int
	// Node is the materialized subtree, detached from any document. Its
	// Parent chain is a fresh run of name-only stub ancestors so that
	// SchemaPath and RelativeSchemaPath resolve exactly as they would
	// in the full tree; the stubs carry no text, attributes or siblings.
	Node *xmltree.Node

	steps []step
}

// Path renders the anchor's positionally qualified XPath, matching
// xmltree.Node.Path on the fully materialized document: a position
// predicate appears exactly on steps whose element has same-named
// siblings. Valid only after the scan has returned EOF — position totals
// are not final earlier.
func (a *Anchor) Path() string {
	var sb strings.Builder
	for _, st := range a.steps {
		sb.WriteByte('/')
		sb.WriteString(st.name)
		if st.count != nil && *st.count > 1 {
			fmt.Fprintf(&sb, "[%d]", st.pos)
		}
	}
	return sb.String()
}

// frame is one open element. Frames off every target chain are "dead":
// they track nothing and cost nothing beyond the stack slot. Frames on a
// chain ("live") carry their path and the per-child-name sibling counters
// anchors below them need; frames inside an anchor additionally carry the
// node being materialized.
type frame struct {
	name   string
	live   bool
	path   string          // set iff live
	counts map[string]*int // lazily allocated, live frames only
	step   step            // this frame's own location step
	node   *xmltree.Node   // set iff materializing
	anchor *Anchor         // set iff this frame is an anchor root
}

// Scanner pulls candidate anchors out of one XML document.
type Scanner struct {
	dec      *xml.Decoder
	exact    map[string]int  // schema path -> target index
	prefixes map[string]bool // proper prefixes and exact target paths
	stack    []frame
	sawRoot  bool
	done     bool
}

// NewScanner returns a scanner over r for the given candidate paths.
// Targets must be plain absolute schema paths ("/freedb/disc" style:
// child axis only, no predicates or wildcards) — the only form candidate
// queries that survive the schema check can take.
func NewScanner(r io.Reader, targets []string) (*Scanner, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("xmlstream: no target paths")
	}
	s := &Scanner{
		dec:      xml.NewDecoder(r),
		exact:    make(map[string]int, len(targets)),
		prefixes: map[string]bool{},
	}
	for i, t := range targets {
		if !strings.HasPrefix(t, "/") || strings.ContainsAny(t, "[]*") {
			return nil, fmt.Errorf("xmlstream: target %q is not a plain absolute schema path", t)
		}
		if dup, ok := s.exact[t]; ok {
			return nil, fmt.Errorf("xmlstream: duplicate target %q (indexes %d and %d)", t, dup, i)
		}
		s.exact[t] = i
		for p := t; p != "/" && p != ""; p = p[:strings.LastIndexByte(p, '/')] {
			s.prefixes[p] = true
		}
	}
	return s, nil
}

// Next returns the next anchor in document order, or (nil, nil) once the
// document has been fully consumed. After the nil anchor, every
// previously returned Anchor.Path is final.
func (s *Scanner) Next() (*Anchor, error) {
	if s.done {
		return nil, nil
	}
	for {
		tok, err := s.dec.Token()
		if err == io.EOF {
			s.done = true
			if !s.sawRoot {
				return nil, fmt.Errorf("xmlstream: empty document")
			}
			if len(s.stack) != 0 {
				return nil, fmt.Errorf("xmlstream: unclosed element %s", s.stack[len(s.stack)-1].name)
			}
			return nil, nil
		}
		if err != nil {
			s.done = true
			return nil, fmt.Errorf("xmlstream: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if err := s.open(t); err != nil {
				s.done = true
				return nil, err
			}
		case xml.EndElement:
			if a := s.close(); a != nil {
				return a, nil
			}
		case xml.CharData:
			if n := len(s.stack); n > 0 && s.stack[n-1].node != nil {
				s.stack[n-1].node.Text += string(t)
			}
		}
	}
}

func (s *Scanner) open(t xml.StartElement) error {
	name := t.Name.Local
	f := frame{name: name}

	var parent *frame
	if len(s.stack) == 0 {
		if s.sawRoot {
			return fmt.Errorf("xmlstream: multiple root elements")
		}
		s.sawRoot = true
		f.path = "/" + name
		f.live = s.prefixes[f.path]
		f.step = step{name: name} // root step: no predicate, ever
	} else {
		parent = &s.stack[len(s.stack)-1]
		if parent.live {
			path := parent.path + "/" + name
			if s.prefixes[path] {
				f.live = true
				f.path = path
				if parent.counts == nil {
					parent.counts = map[string]*int{}
				}
				c := parent.counts[name]
				if c == nil {
					c = new(int)
					parent.counts[name] = c
				}
				*c++
				f.step = step{name: name, pos: *c, count: c}
			}
		}
	}

	// Materialize: continue the enclosing anchor's subtree, and/or start
	// a new anchor when this element's path is itself a target (targets
	// may nest; an inner anchor shares the outer subtree's nodes).
	if parent != nil && parent.node != nil {
		f.node = parent.node.AppendChild(xmltree.FromStartElement(t))
	}
	if f.live {
		if ti, ok := s.exact[f.path]; ok {
			if f.node == nil {
				f.node = xmltree.FromStartElement(t)
				f.node.Parent = s.stubAncestors()
			}
			steps := make([]step, 0, len(s.stack)+1)
			for i := range s.stack {
				steps = append(steps, s.stack[i].step)
			}
			steps = append(steps, f.step)
			f.anchor = &Anchor{Target: ti, Node: f.node, steps: steps}
		}
	}
	s.stack = append(s.stack, f)
	return nil
}

// stubAncestors builds a fresh name-only Parent chain mirroring the open
// element stack, so a detached anchor's SchemaPath matches the full tree.
func (s *Scanner) stubAncestors() *xmltree.Node {
	var p *xmltree.Node
	for i := range s.stack {
		p = &xmltree.Node{Name: s.stack[i].name, Parent: p}
	}
	return p
}

func (s *Scanner) close() *Anchor {
	f := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	if f.node != nil {
		f.node.Text = strings.TrimSpace(f.node.Text)
	}
	return f.anchor
}
