package xmlstream

import (
	"strings"
	"testing"

	"repro/internal/xmltree"
)

// collect drains a scanner, requiring a clean EOF.
func collect(t *testing.T, input string, targets []string) []*Anchor {
	t.Helper()
	sc, err := NewScanner(strings.NewReader(input), targets)
	if err != nil {
		t.Fatal(err)
	}
	var out []*Anchor
	for {
		a, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if a == nil {
			return out
		}
		out = append(out, a)
	}
}

// The doc exercises everything xmltree.Parse normalizes: comments,
// processing instructions, CDATA, namespace declarations, attributes and
// interleaved character data.
const libDoc = `<?xml version="1.0"?>
<!-- catalog -->
<lib xmlns:x="http://example.com/x">
  <?page-break?>
  <book id="b1">
    <title>The <![CDATA[<Matrix>]]> Explained</title>
    <author x:ref="a1">Smith</author>
    <!-- review pending -->
  </book>
  <shelf>
    <book id="b2"><title>Signs</title><author>Jones</author></book>
  </shelf>
  <book id="b3"><title>Duplicates</title><author>Weis</author></book>
</lib>`

// TestScannerMatchesParse asserts token-for-token agreement with
// xmltree.Parse: every anchor subtree the scanner materializes renders
// identically to the corresponding node of the fully parsed tree, and its
// positional and schema paths match.
func TestScannerMatchesParse(t *testing.T) {
	doc, err := xmltree.ParseString(libDoc)
	if err != nil {
		t.Fatal(err)
	}
	anchors := collect(t, libDoc, []string{"/lib/book"})
	treeBooks := doc.Root.ChildrenNamed("book")
	if len(anchors) != len(treeBooks) {
		t.Fatalf("anchors = %d, want %d (top-level books only)", len(anchors), len(treeBooks))
	}
	for i, a := range anchors {
		if got, want := a.Node.String(), treeBooks[i].String(); got != want {
			t.Errorf("anchor %d subtree:\n got: %s\nwant: %s", i, got, want)
		}
		if got, want := a.Path(), treeBooks[i].Path(); got != want {
			t.Errorf("anchor %d path = %q, want %q", i, got, want)
		}
		if got, want := a.Node.SchemaPath(), treeBooks[i].SchemaPath(); got != want {
			t.Errorf("anchor %d schema path = %q, want %q", i, got, want)
		}
	}
	// The CDATA section must have merged into the title text exactly as
	// Parse merges it.
	if got := anchors[0].Node.Child("title").Text; got != "The <Matrix> Explained" {
		t.Errorf("CDATA title = %q", got)
	}
	// Namespace declarations are dropped, other attributes kept by local
	// name.
	if _, ok := anchors[0].Node.Child("author").Attr("ref"); !ok {
		t.Errorf("author ref attribute lost: %+v", anchors[0].Node.Child("author").Attrs)
	}
}

// TestAnchorPathPredicates pins the positional-path contract: predicates
// appear exactly on steps with same-named siblings, and totals are only
// required to be correct after EOF.
func TestAnchorPathPredicates(t *testing.T) {
	const doc = `<root>
	  <group><item>a</item></group>
	  <group><item>b</item><item>c</item></group>
	  <single><item>d</item></single>
	</root>`
	anchors := collect(t, doc, []string{"/root/group/item", "/root/single/item"})
	want := []string{
		"/root/group[1]/item",    // only item in its group: no predicate on item
		"/root/group[2]/item[1]", // two items: predicate required
		"/root/group[2]/item[2]",
		"/root/single/item", // single is unique: no predicate anywhere
	}
	if len(anchors) != len(want) {
		t.Fatalf("anchors = %d, want %d", len(anchors), len(want))
	}
	for i, a := range anchors {
		if got := a.Path(); got != want[i] {
			t.Errorf("anchor %d path = %q, want %q", i, got, want[i])
		}
	}
}

// TestNestedTargets: an inner target inside an outer target's subtree is
// yielded as its own anchor sharing the outer subtree's nodes.
func TestNestedTargets(t *testing.T) {
	const doc = `<db><disc><track><title>t1</title></track><track><title>t2</title></track></disc></db>`
	anchors := collect(t, doc, []string{"/db/disc", "/db/disc/track"})
	if len(anchors) != 3 {
		t.Fatalf("anchors = %d, want disc + 2 tracks", len(anchors))
	}
	// Tracks close before the disc, so they arrive first.
	if anchors[0].Target != 1 || anchors[1].Target != 1 || anchors[2].Target != 0 {
		t.Fatalf("targets = %d,%d,%d, want 1,1,0",
			anchors[0].Target, anchors[1].Target, anchors[2].Target)
	}
	if anchors[0].Path() != "/db/disc/track[1]" || anchors[2].Path() != "/db/disc" {
		t.Errorf("paths = %q, %q", anchors[0].Path(), anchors[2].Path())
	}
	// The inner anchors are the same nodes the outer subtree holds.
	if got := anchors[2].Node.ChildrenNamed("track")[0]; got != anchors[0].Node {
		t.Error("inner anchor does not share the outer subtree's node")
	}
}

// TestStubAncestors: a detached anchor's Parent chain resolves schema
// paths exactly as the full tree would, without retaining siblings or
// text.
func TestStubAncestors(t *testing.T) {
	const doc = `<a><pad>x</pad><b><c><d>v</d></c></b></a>`
	anchors := collect(t, doc, []string{"/a/b/c"})
	if len(anchors) != 1 {
		t.Fatalf("anchors = %d", len(anchors))
	}
	n := anchors[0].Node
	if got := n.Child("d").SchemaPath(); got != "/a/b/c/d" {
		t.Errorf("schema path = %q", got)
	}
	if rel, ok := n.Child("d").RelativeSchemaPath(n); !ok || rel != "./d" {
		t.Errorf("relative path = %q, %v", rel, ok)
	}
	// Stubs carry structure only.
	for p := n.Parent; p != nil; p = p.Parent {
		if p.Text != "" || len(p.Attrs) != 0 {
			t.Errorf("stub %s carries content", p.Name)
		}
	}
}

func TestScannerErrors(t *testing.T) {
	for _, tc := range []struct {
		name, doc string
		targets   []string
		wantErr   string
	}{
		{"empty", "", []string{"/a"}, "empty document"},
		{"multiple roots", "<a></a><a></a>", []string{"/a/b"}, "multiple root"},
		{"malformed", "<a><b></a>", []string{"/a/b"}, "syntax error"},
		{"bad target", "<a/>", []string{"a/b"}, "absolute schema path"},
		{"wildcard target", "<a/>", []string{"/a/*"}, "absolute schema path"},
		{"no targets", "<a/>", nil, "no target"},
		{"duplicate target", "<a/>", []string{"/a/b", "/a/b"}, "duplicate target"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sc, err := NewScanner(strings.NewReader(tc.doc), tc.targets)
			if err == nil {
				for {
					var a *Anchor
					a, err = sc.Next()
					if a == nil || err != nil {
						break
					}
				}
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestRootAnchor: the root element itself can be a target.
func TestRootAnchor(t *testing.T) {
	anchors := collect(t, "<a><b>x</b></a>", []string{"/a"})
	if len(anchors) != 1 || anchors[0].Path() != "/a" {
		t.Fatalf("anchors = %+v", anchors)
	}
	if anchors[0].Node.Parent != nil {
		t.Error("root anchor should have no stub ancestors")
	}
}
