// Package fusion turns duplicate clusters into single representative
// elements — the "data fusion" consumer the paper names as the
// destination of identified duplicates (Sec. 2.3), built around the prime
// representative idea of Monge & Elkan [12] that the authors planned to
// adopt.
//
// Fusion is per schema path: the representative keeps, for every child
// path, the union of the cluster's distinct values; where the schema (or
// the observed data) says a path is single-valued, conflicts resolve by
// majority vote, ties by the longest (most informative) value.
package fusion

import (
	"sort"

	"repro/internal/xmltree"
)

// Fuse merges the duplicate elements of one cluster into a fresh element.
// All members must share their root element name; members is non-empty.
// singleton reports whether a child schema path is single-valued — pass
// nil to derive it from the observed data (a path is treated as
// single-valued when no member repeats it).
func Fuse(members []*xmltree.Node, singleton func(schemaPath string) bool) *xmltree.Node {
	if len(members) == 0 {
		return nil
	}
	if singleton == nil {
		singleton = observedSingleton(members)
	}
	return fuse(members, singleton)
}

func fuse(members []*xmltree.Node, singleton func(string) bool) *xmltree.Node {
	out := xmltree.NewNode(members[0].Name)
	out.Text = electText(members)

	// Group children across members by name, preserving first-seen order.
	type group struct {
		name    string
		byValue map[string][]*xmltree.Node // distinct serialized -> instances
		order   []string
	}
	var order []string
	groups := map[string]*group{}
	for _, m := range members {
		for _, c := range m.Children {
			g, ok := groups[c.Name]
			if !ok {
				g = &group{name: c.Name, byValue: map[string][]*xmltree.Node{}}
				groups[c.Name] = g
				order = append(order, c.Name)
			}
			key := c.String()
			if _, seen := g.byValue[key]; !seen {
				g.order = append(g.order, key)
			}
			g.byValue[key] = append(g.byValue[key], c)
		}
	}

	for _, name := range order {
		g := groups[name]
		path := members[0].SchemaPath() + "/" + name
		if singleton(path) {
			// Majority vote across members; ties prefer the longest
			// serialization (the prime-representative rule).
			best := ""
			bestCount := -1
			for _, key := range g.order {
				count := len(g.byValue[key])
				if count > bestCount || (count == bestCount && len(key) > len(best)) {
					best = key
					bestCount = count
				}
			}
			// Recursively fuse the winning instances so nested conflicts
			// resolve too.
			out.AppendChild(fuse(g.byValue[best], singleton))
			continue
		}
		// Multi-valued: union of distinct values, stable order.
		for _, key := range g.order {
			out.AppendChild(g.byValue[key][0].Clone())
		}
	}
	return out
}

// electText picks the majority text among members, ties by longest.
func electText(members []*xmltree.Node) string {
	counts := map[string]int{}
	for _, m := range members {
		if m.Text != "" {
			counts[m.Text]++
		}
	}
	var keys []string
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic before vote comparison
	best := ""
	bestCount := 0
	for _, k := range keys {
		c := counts[k]
		if c > bestCount || (c == bestCount && len(k) > len(best)) {
			best = k
			bestCount = c
		}
	}
	return best
}

// observedSingleton derives single-valuedness from the members: a child
// name is single-valued if no member holds it more than once.
func observedSingleton(members []*xmltree.Node) func(string) bool {
	multi := map[string]bool{}
	for _, m := range members {
		counts := map[string]int{}
		for _, c := range m.Children {
			counts[c.Name]++
		}
		for name, n := range counts {
			if n > 1 {
				multi[m.SchemaPath()+"/"+name] = true
			}
		}
	}
	return func(path string) bool { return !multi[path] }
}
