package fusion

import (
	"strings"
	"testing"

	"repro/internal/xmltree"
)

func node(t *testing.T, s string) *xmltree.Node {
	t.Helper()
	doc, err := xmltree.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return doc.Root
}

func TestFuseMajorityVoteOnSingletons(t *testing.T) {
	a := node(t, `<disc><did>abc</did><title>The Matrix</title></disc>`)
	b := node(t, `<disc><did>abc</did><title>Matrix</title></disc>`)
	c := node(t, `<disc><did>abX</did><title>The Matrix</title></disc>`)
	got := Fuse([]*xmltree.Node{a, b, c}, nil)
	if got.Child("did").Text != "abc" {
		t.Errorf("did = %q, want majority abc", got.Child("did").Text)
	}
	if got.Child("title").Text != "The Matrix" {
		t.Errorf("title = %q, want majority The Matrix", got.Child("title").Text)
	}
}

func TestFuseTieBreaksLongest(t *testing.T) {
	a := node(t, `<disc><title>Matrix</title></disc>`)
	b := node(t, `<disc><title>The Matrix</title></disc>`)
	got := Fuse([]*xmltree.Node{a, b}, nil)
	if got.Child("title").Text != "The Matrix" {
		t.Errorf("title = %q, want the longer value on tie", got.Child("title").Text)
	}
}

func TestFuseUnionOfMultiValued(t *testing.T) {
	a := node(t, `<movie><actor>Keanu Reeves</actor><actor>L. Fishburne</actor></movie>`)
	b := node(t, `<movie><actor>Keanu Reeves</actor><actor>C.-A. Moss</actor></movie>`)
	got := Fuse([]*xmltree.Node{a, b}, nil)
	actors := got.ChildrenNamed("actor")
	if len(actors) != 3 {
		t.Fatalf("actors = %d, want union of 3: %s", len(actors), got)
	}
	var names []string
	for _, n := range actors {
		names = append(names, n.Text)
	}
	joined := strings.Join(names, "|")
	for _, want := range []string{"Keanu Reeves", "L. Fishburne", "C.-A. Moss"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in %q", want, joined)
		}
	}
}

func TestFuseFillsMissingData(t *testing.T) {
	// one duplicate lost its year; the fused representative restores it
	a := node(t, `<disc><did>x1</did><year>1999</year></disc>`)
	b := node(t, `<disc><did>x1</did></disc>`)
	got := Fuse([]*xmltree.Node{a, b}, nil)
	if y := got.Child("year"); y == nil || y.Text != "1999" {
		t.Errorf("year not restored: %s", got)
	}
}

func TestFuseNestedConflicts(t *testing.T) {
	a := node(t, `<movie><info><rating>PG</rating></info></movie>`)
	b := node(t, `<movie><info><rating>PG-13</rating></info></movie>`)
	c := node(t, `<movie><info><rating>PG-13</rating></info></movie>`)
	got := Fuse([]*xmltree.Node{a, b, c}, nil)
	if r := got.Child("info").Child("rating"); r == nil || r.Text != "PG-13" {
		t.Errorf("nested vote = %s", got)
	}
}

func TestFuseExplicitSingletonHint(t *testing.T) {
	// schema says actor is single-valued: the majority instance wins
	// instead of the union.
	a := node(t, `<movie><actor>Keanu</actor></movie>`)
	b := node(t, `<movie><actor>Keanu</actor></movie>`)
	c := node(t, `<movie><actor>Mel</actor></movie>`)
	got := Fuse([]*xmltree.Node{a, b, c}, func(path string) bool { return true })
	actors := got.ChildrenNamed("actor")
	if len(actors) != 1 || actors[0].Text != "Keanu" {
		t.Errorf("actors = %s", got)
	}
}

func TestFuseEdgeCases(t *testing.T) {
	if Fuse(nil, nil) != nil {
		t.Error("empty cluster should fuse to nil")
	}
	solo := node(t, `<disc><did>a</did></disc>`)
	got := Fuse([]*xmltree.Node{solo}, nil)
	if got.String() != solo.String() {
		t.Errorf("singleton fusion changed the element:\n%s\nvs\n%s", got, solo)
	}
}

func TestFuseDeterministic(t *testing.T) {
	a := node(t, `<d><t>x</t><t>y</t></d>`)
	b := node(t, `<d><t>y</t><t>z</t></d>`)
	first := Fuse([]*xmltree.Node{a, b}, nil).String()
	for i := 0; i < 5; i++ {
		if got := Fuse([]*xmltree.Node{a, b}, nil).String(); got != first {
			t.Fatalf("fusion not deterministic:\n%s\nvs\n%s", first, got)
		}
	}
}
