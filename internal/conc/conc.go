// Package conc provides the one work-stealing scaffold the pipeline
// stages and store index builds share: contiguous ranges of [0, n)
// claimed by worker goroutines through an atomic cursor. Ranges never
// overlap, so callers are data-race free as long as fn only writes state
// owned by its range.
package conc

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Ranges runs fn over contiguous chunks covering [0, n). workers <= 0
// selects GOMAXPROCS and 1 forces the serial path; chunk <= 0 selects
// n/(4·workers) (minimum 1). The final [lo, hi) chunk is clipped to n.
//
// A panic inside fn is re-raised on the calling goroutine after every
// worker has drained, with the original panic value — so typed panics
// (e.g. a store surfacing a backend failure) cross the worker boundary
// exactly as they would on the serial path instead of crashing the
// process from an anonymous goroutine. When several workers panic, the
// first one recovered wins.
func Ranges(workers, n, chunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if chunk <= 0 {
		chunk = n / (4 * workers)
		if chunk < 1 {
			chunk = 1
		}
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var (
		next     int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				lo := int(atomic.AddInt64(&next, int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
