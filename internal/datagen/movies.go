package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/xmltree"
)

// Person is a movie participant.
type Person struct {
	First, Last string
	Role        string // actor | actress | producer
}

// Movie is one movie entity rendered into both Dataset 2 sources.
type Movie struct {
	Title       string // original (English) title
	GermanTitle string // FilmDienst main title (may equal Title)
	AkaTitle    string // FilmDienst aka-title (often the original title)
	Year        int
	YearDE      int // FilmDienst year (occasionally off by one)
	Genres      []string
	GenresDE    []string
	ReleaseISO  string // IMDB release-date/date, yyyy-mm-dd
	PremiereDE  string // FilmDienst premiere, dd.mm.yyyy
	People      []Person
	// PeopleDE is the FilmDienst person list: a subset of People plus the
	// director, whom IMDB's actor/producer lists do not carry. Real
	// integration scenarios rarely agree on participant lists.
	PeopleDE []Person
}

// MovieParams tunes the Dataset 2 generator. Zero values select defaults.
type MovieParams struct {
	// KeepTitleRate is the fraction of movies whose German distribution
	// kept the original title (no translation).
	KeepTitleRate float64
	// AkaRate is the fraction of movies whose FilmDienst entry carries an
	// aka-title holding the original title.
	AkaRate float64
	// YearSkewRate is the fraction of movies whose FilmDienst year is off
	// by one (different counting of premiere years).
	YearSkewRate float64
	// SamePremiereRate is the fraction of movies whose German premiere
	// date equals the US release (format still differs).
	SamePremiereRate float64
}

func (p MovieParams) withDefaults() MovieParams {
	if p.KeepTitleRate == 0 {
		p.KeepTitleRate = 0.45
	}
	if p.AkaRate == 0 {
		p.AkaRate = 0.65
	}
	if p.YearSkewRate == 0 {
		p.YearSkewRate = 0.10
	}
	if p.SamePremiereRate == 0 {
		p.SamePremiereRate = 0.40
	}
	return p
}

// Movies generates n movie entities with default parameters.
func Movies(n int, seed int64) []Movie {
	return MoviesWith(n, seed, MovieParams{})
}

// MoviesWith generates n movie entities.
func MoviesWith(n int, seed int64, params MovieParams) []Movie {
	p := params.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	used := map[string]bool{}
	movies := make([]Movie, n)
	for i := range movies {
		var title string
		for {
			title = moviePhrase(rng, 2+rng.Intn(2))
			if !used[title] {
				used[title] = true
				break
			}
		}
		m := Movie{
			Title: title,
			Year:  1965 + rng.Intn(40),
		}
		m.YearDE = m.Year
		if rng.Float64() < p.YearSkewRate {
			m.YearDE = m.Year + 1
		}
		if rng.Float64() < p.KeepTitleRate {
			m.GermanTitle = title
		} else {
			m.GermanTitle = germanize(title)
		}
		if rng.Float64() < p.AkaRate {
			m.AkaTitle = title
		}
		if rng.Float64() < 0.90 { // genres optional (Table 6: not ME)
			ng := 1 + rng.Intn(3)
			seen := map[int]bool{}
			for g := 0; g < ng; g++ {
				gi := rng.Intn(len(movieGenres))
				if seen[gi] {
					continue
				}
				seen[gi] = true
				m.Genres = append(m.Genres, movieGenres[gi].EN)
				m.GenresDE = append(m.GenresDE, movieGenres[gi].DE)
			}
		}
		day := 1 + rng.Intn(28)
		month := 1 + rng.Intn(12)
		m.ReleaseISO = fmt.Sprintf("%04d-%02d-%02d", m.Year, month, day)
		switch { // premiere optional (Table 6: not ME)
		case rng.Float64() >= 0.90:
			m.PremiereDE = ""
		case rng.Float64() < p.SamePremiereRate:
			m.PremiereDE = fmt.Sprintf("%02d.%02d.%04d", day, month, m.Year)
		default:
			d2 := 1 + rng.Intn(28)
			mo2 := 1 + rng.Intn(12)
			m.PremiereDE = fmt.Sprintf("%02d.%02d.%04d", d2, mo2, m.YearDE)
		}
		np := 2 + rng.Intn(4)
		for q := 0; q < np; q++ {
			role := "actor"
			switch q % 3 {
			case 1:
				role = "actress"
			case 2:
				role = "producer"
			}
			m.People = append(m.People, Person{
				First: firstNames[rng.Intn(len(firstNames))],
				Last:  lastNames[rng.Intn(len(lastNames))],
				Role:  role,
			})
		}
		for _, p := range m.People {
			if rng.Float64() < 0.70 {
				m.PeopleDE = append(m.PeopleDE, p)
			}
		}
		m.PeopleDE = append(m.PeopleDE, Person{
			First: firstNames[rng.Intn(len(firstNames))],
			Last:  lastNames[rng.Intn(len(lastNames))],
			Role:  "director",
		})
		movies[i] = m
	}
	return movies
}

func moviePhrase(rng *rand.Rand, words int) string {
	parts := make([]string, words)
	for i := range parts {
		parts[i] = movieTitleWords[rng.Intn(len(movieTitleWords))]
	}
	return strings.Join(parts, " ")
}

func germanize(title string) string {
	words := strings.Fields(title)
	for i, w := range words {
		if de, ok := germanTitleWords[w]; ok {
			words[i] = de
		}
	}
	out := strings.Join(words, " ")
	if out == title {
		// Ensure a visible translation even when no word has a table
		// entry, as German distributors retitle freely.
		out = "die " + out
	}
	return out
}

// IMDBToXML renders movies under the IMDB-side schema of Table 6:
//
//	imdb/movie/{year, title, genre*, release-date/date,
//	            people/{actors/actor/name, actresses/actress/name,
//	                    producers/producer/name}}
func IMDBToXML(movies []Movie) *xmltree.Document {
	root := xmltree.NewNode("imdb")
	for _, m := range movies {
		mv := xmltree.NewNode("movie")
		mv.AppendChild(xmltree.NewTextNode("year", fmt.Sprintf("%d", m.Year)))
		mv.AppendChild(xmltree.NewTextNode("title", m.Title))
		for _, g := range m.Genres {
			mv.AppendChild(xmltree.NewTextNode("genre", g))
		}
		rd := xmltree.NewNode("release-date")
		rd.AppendChild(xmltree.NewTextNode("date", m.ReleaseISO))
		mv.AppendChild(rd)
		people := xmltree.NewNode("people")
		actors := xmltree.NewNode("actors")
		actresses := xmltree.NewNode("actresses")
		producers := xmltree.NewNode("producers")
		for _, p := range m.People {
			name := p.First + " " + p.Last
			switch p.Role {
			case "actor":
				a := xmltree.NewNode("actor")
				a.AppendChild(xmltree.NewTextNode("name", name))
				actors.AppendChild(a)
			case "actress":
				a := xmltree.NewNode("actress")
				a.AppendChild(xmltree.NewTextNode("name", name))
				actresses.AppendChild(a)
			default:
				a := xmltree.NewNode("producer")
				a.AppendChild(xmltree.NewTextNode("name", name))
				producers.AppendChild(a)
			}
		}
		for _, grp := range []*xmltree.Node{actors, actresses, producers} {
			if len(grp.Children) > 0 {
				people.AppendChild(grp)
			}
		}
		mv.AppendChild(people)
		root.AppendChild(mv)
	}
	return &xmltree.Document{Root: root}
}

// FilmDienstToXML renders movies under the FilmDienst-side schema of
// Table 6:
//
//	filmdienst/movie/{year, movie-title/title, aka-title/title?,
//	                  genres/genre*, premiere,
//	                  people/person/{firstname, lastname}}
func FilmDienstToXML(movies []Movie) *xmltree.Document {
	root := xmltree.NewNode("filmdienst")
	for _, m := range movies {
		mv := xmltree.NewNode("movie")
		mv.AppendChild(xmltree.NewTextNode("year", fmt.Sprintf("%d", m.YearDE)))
		mt := xmltree.NewNode("movie-title")
		mt.AppendChild(xmltree.NewTextNode("title", m.GermanTitle))
		mv.AppendChild(mt)
		if m.AkaTitle != "" {
			aka := xmltree.NewNode("aka-title")
			aka.AppendChild(xmltree.NewTextNode("title", m.AkaTitle))
			mv.AppendChild(aka)
		}
		if len(m.GenresDE) > 0 {
			genres := xmltree.NewNode("genres")
			for _, g := range m.GenresDE {
				genres.AppendChild(xmltree.NewTextNode("genre", g))
			}
			mv.AppendChild(genres)
		}
		if m.PremiereDE != "" {
			mv.AppendChild(xmltree.NewTextNode("premiere", m.PremiereDE))
		}
		people := xmltree.NewNode("people")
		for _, p := range m.PeopleDE {
			pe := xmltree.NewNode("person")
			pe.AppendChild(xmltree.NewTextNode("firstname", p.First))
			pe.AppendChild(xmltree.NewTextNode("lastname", p.Last))
			people.AppendChild(pe)
		}
		mv.AppendChild(people)
		root.AppendChild(mv)
	}
	return &xmltree.Document{Root: root}
}

// Dataset2MappingPaths aligns the two Table 6 schemas to shared
// real-world types. The candidate type is "MOVIE". The FilmDienst person
// element is compared as a composite — its firstname + lastname children
// concatenate into one value, mirroring the "firstname + lastname" entry
// of Table 6 (mark it with Dataset2CompositePaths).
func Dataset2MappingPaths() map[string][]string {
	return map[string][]string{
		"MOVIE": {"/imdb/movie", "/filmdienst/movie"},
		"YEAR":  {"/imdb/movie/year", "/filmdienst/movie/year"},
		"TITLE": {
			"/imdb/movie/title",
			"/filmdienst/movie/movie-title/title",
			"/filmdienst/movie/aka-title/title",
		},
		"GENRE": {"/imdb/movie/genre", "/filmdienst/movie/genres/genre"},
		"RELEASE": {
			"/imdb/movie/release-date/date",
			"/filmdienst/movie/premiere",
		},
		"PERSON": {
			"/imdb/movie/people/actors/actor/name",
			"/imdb/movie/people/actresses/actress/name",
			"/imdb/movie/people/producers/producer/name",
			"/filmdienst/movie/people/person",
		},
	}
}

// Dataset2CompositePaths lists the mapped paths whose OD value is
// composed from child text (Table 6's "firstname + lastname").
func Dataset2CompositePaths() []string {
	return []string{"/filmdienst/movie/people/person"}
}
