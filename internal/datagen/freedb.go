// Package datagen synthesizes the three corpora of the paper's evaluation
// (Section 6.1):
//
//   - a FreeDB-like CD corpus for Datasets 1 and 3, reproducing the
//     statistical quirks the paper's analysis depends on (near-sequential
//     disc-ids, high-IDF artists/titles, low-IDF genre/year/cdextra,
//     ~20% of CDs with dummy "Track N" titles),
//   - paired IMDB-like and FilmDienst-like movie corpora for Dataset 2,
//     rendering the same movies under the two differently structured
//     schemas of Table 6 with synonym titles, differing date formats and
//     split person names.
//
// All generators are deterministic in their seed.
package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/xmltree"
)

// CD is one FreeDB-like disc record. Artist, Title and CDExtra can carry
// secondary values (AltArtist etc.), matching Table 5's "not SE" flags for
// those elements: featured artists, alternate title spellings, extra
// cdextra remarks.
type CD struct {
	DID       string
	Artist    string
	AltArtist string // optional second artist element
	Title     string
	AltTitle  string // optional second title element
	Genre     string // empty when absent (genre is optional per Table 5)
	Year      int
	CDExtra   string // empty when absent
	CDExtra2  string // optional second cdextra element
	Tracks    []string
	Dummy     bool // tracks are placeholder "Track N" titles
}

// FreeDBParams tunes the CD generator. Zero values select the defaults
// the experiments use.
type FreeDBParams struct {
	// DummyTrackRate is the fraction of CDs whose track list consists of
	// placeholder titles "Track 1", "Track 2", ... The paper observed
	// roughly 20% of FreeDB CDs with such dummy titles (Sec. 6.2).
	DummyTrackRate float64
	// CDExtraRate is the fraction of CDs carrying the optional cdextra
	// element.
	CDExtraRate float64
	// ArtistPool bounds the number of distinct artists. The default
	// scales with the corpus (4 artists per 5 CDs) so that most artists
	// are unique, like real FreeDB, while some release several CDs.
	ArtistPool int
	// MinTracks/MaxTracks bound the track count.
	MinTracks, MaxTracks int
	// ReissueRate is the fraction of CDs that are reissues of an earlier
	// CD in the corpus: same artist, title and (usually) year, but a new
	// disc-id and edition fields. Reissues are distinct releases — NOT
	// duplicates — yet score in the sim ≈ 0.55..0.85 band, giving
	// Dataset 3 the borderline pairs behind the Fig. 7 precision curve.
	// Default 0 (Dataset 1 has no reissues).
	ReissueRate float64
}

func (p FreeDBParams) withDefaults(n int) FreeDBParams {
	if p.DummyTrackRate == 0 {
		p.DummyTrackRate = 0.20
	}
	if p.CDExtraRate == 0 {
		p.CDExtraRate = 0.30
	}
	if p.ArtistPool == 0 {
		// Most artists release one CD, like real FreeDB; drawing n times
		// from 4n artists leaves ~78% of artists unique.
		p.ArtistPool = n * 4
		if p.ArtistPool < 64 {
			p.ArtistPool = 64
		}
	}
	if p.MinTracks == 0 {
		p.MinTracks = 6
	}
	if p.MaxTracks == 0 {
		p.MaxTracks = 14
	}
	return p
}

// FreeDB generates n CDs with the default parameters.
func FreeDB(n int, seed int64) []CD {
	return FreeDBWith(n, seed, FreeDBParams{})
}

// FreeDBWith generates n CDs with explicit parameters.
func FreeDBWith(n int, seed int64, params FreeDBParams) []CD {
	p := params.withDefaults(n)
	rng := rand.New(rand.NewSource(seed))

	artists := make([]string, p.ArtistPool)
	for i := range artists {
		artists[i] = firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
	}

	usedTitles := map[string]bool{}
	usedDIDs := map[string]bool{}
	var dids []string
	cds := make([]CD, n)
	for i := range cds {
		cd := CD{
			Artist: artists[rng.Intn(len(artists))],
			Year:   1958 + rng.Intn(48),
		}
		if rng.Float64() < 0.92 { // genre is optional (Table 5: not ME)
			cd.Genre = freedbGenres[rng.Intn(len(freedbGenres))]
		}
		if rng.Float64() < 0.10 { // featured artist (Table 5: not SE)
			cd.AltArtist = artists[rng.Intn(len(artists))]
		}
		for {
			cd.Title = titlePhrase(rng, 2+rng.Intn(3))
			if !usedTitles[cd.Title] {
				usedTitles[cd.Title] = true
				break
			}
		}
		if rng.Float64() < 0.08 { // alternate title spelling (not SE)
			cd.AltTitle = cd.Title + " ep"
		}
		if rng.Float64() < p.CDExtraRate {
			cd.CDExtra = cdExtraPhrases[rng.Intn(len(cdExtraPhrases))]
			if rng.Float64() < 0.25 { // second remark (Table 5: not SE)
				cd.CDExtra2 = cdExtraPhrases[rng.Intn(len(cdExtraPhrases))]
			}
		}
		nt := p.MinTracks + rng.Intn(p.MaxTracks-p.MinTracks+1)
		// FreeDB disc-ids pack a checksum byte, the playing time in
		// seconds and the track count into 8 hex chars. The paper found
		// that "most IDs do not differ by more than one character" and
		// blames them for the low k=1 precision in Fig. 5; we reproduce
		// that by giving ~28% of discs an id derived from an earlier id
		// with a single digit changed. (Higher rates drag the Fig. 8
		// filter recall below the paper's band; lower ones erase the
		// k=1 precision dip.)
		for {
			if len(dids) > 0 && rng.Float64() < 0.28 {
				cd.DID = mutateHexDigit(rng, dids[rng.Intn(len(dids))])
			} else {
				cd.DID = fmt.Sprintf("%02x%04x%02x",
					rng.Intn(256), 0x500+rng.Intn(0x1800), nt)
			}
			if !usedDIDs[cd.DID] {
				usedDIDs[cd.DID] = true
				dids = append(dids, cd.DID)
				break
			}
		}
		cd.Tracks = make([]string, nt)
		if rng.Float64() < p.DummyTrackRate {
			cd.Dummy = true
			for t := range cd.Tracks {
				cd.Tracks[t] = fmt.Sprintf("Track %d", t+1)
			}
		} else {
			for t := range cd.Tracks {
				cd.Tracks[t] = titlePhrase(rng, 1+rng.Intn(3))
			}
		}
		if i > 0 && rng.Float64() < p.ReissueRate {
			// Rewrite this disc as a reissue of an earlier one.
			src := cds[rng.Intn(i)]
			cd.Artist = src.Artist
			cd.AltArtist = ""
			cd.Title = src.Title
			cd.AltTitle = ""
			cd.Year = src.Year
			if rng.Float64() < 0.20 {
				cd.Year = src.Year + 1 + rng.Intn(3) // later edition
			}
			if rng.Float64() < 0.50 {
				cd.Genre = src.Genre
			}
			cd.CDExtra = cdExtraPhrases[rng.Intn(len(cdExtraPhrases))]
			cd.CDExtra2 = ""
			if rng.Float64() < 0.70 {
				cd.Tracks = append([]string(nil), src.Tracks...)
				cd.Dummy = src.Dummy
			}
		}
		cds[i] = cd
	}
	return cds
}

const hexDigits = "0123456789abcdef"

// mutateHexDigit changes one hex digit of id to a different digit.
func mutateHexDigit(rng *rand.Rand, id string) string {
	b := []byte(id)
	pos := rng.Intn(len(b))
	for {
		d := hexDigits[rng.Intn(16)]
		if d != b[pos] {
			b[pos] = d
			break
		}
	}
	return string(b)
}

func titlePhrase(rng *rand.Rand, words int) string {
	parts := make([]string, words)
	for i := range parts {
		parts[i] = titleWords[rng.Intn(len(titleWords))]
	}
	return strings.Join(parts, " ")
}

// FreeDBToXML renders CDs as a <freedb> document with the Dataset 1 /
// Table 5 structure: disc nests did, artist, title, genre?, year,
// cdextra?, tracks/title*.
func FreeDBToXML(cds []CD) *xmltree.Document {
	root := xmltree.NewNode("freedb")
	for _, cd := range cds {
		disc := xmltree.NewNode("disc")
		disc.AppendChild(xmltree.NewTextNode("did", cd.DID))
		disc.AppendChild(xmltree.NewTextNode("artist", cd.Artist))
		if cd.AltArtist != "" {
			disc.AppendChild(xmltree.NewTextNode("artist", cd.AltArtist))
		}
		disc.AppendChild(xmltree.NewTextNode("title", cd.Title))
		if cd.AltTitle != "" {
			disc.AppendChild(xmltree.NewTextNode("title", cd.AltTitle))
		}
		if cd.Genre != "" {
			disc.AppendChild(xmltree.NewTextNode("genre", cd.Genre))
		}
		disc.AppendChild(xmltree.NewTextNode("year", fmt.Sprintf("%d", cd.Year)))
		if cd.CDExtra != "" {
			disc.AppendChild(xmltree.NewTextNode("cdextra", cd.CDExtra))
		}
		if cd.CDExtra2 != "" {
			disc.AppendChild(xmltree.NewTextNode("cdextra", cd.CDExtra2))
		}
		tracks := xmltree.NewNode("tracks")
		for _, title := range cd.Tracks {
			tracks.AppendChild(xmltree.NewTextNode("title", title))
		}
		disc.AppendChild(tracks)
		root.AppendChild(disc)
	}
	return &xmltree.Document{Root: root}
}

// FreeDBSynonyms returns the value-level synonym table for the dirty
// generator: genre and cdextra phrases with common alternate spellings.
func FreeDBSynonyms() map[string]string {
	out := map[string]string{}
	for k, v := range genreSynonyms {
		out[k] = v
	}
	for k, v := range cdExtraSynonyms {
		out[k] = v
	}
	return out
}

// FreeDBMapping returns the schema-path mapping for the CD corpus: every
// element is its own real-world type (single schema), with DISC as the
// candidate type.
//
// The returned candidate type name is "DISC".
func FreeDBMappingPaths() map[string][]string {
	return map[string][]string{
		"DISC":       {"/freedb/disc"},
		"DISCID":     {"/freedb/disc/did"},
		"ARTIST":     {"/freedb/disc/artist"},
		"CDTITLE":    {"/freedb/disc/title"},
		"GENRE":      {"/freedb/disc/genre"},
		"YEAR":       {"/freedb/disc/year"},
		"CDEXTRA":    {"/freedb/disc/cdextra"},
		"TRACKS":     {"/freedb/disc/tracks"},
		"TRACKTITLE": {"/freedb/disc/tracks/title"},
	}
}
