package datagen

import (
	"strings"
	"testing"

	"repro/internal/strdist"
	"repro/internal/xsd"
)

func TestFreeDBDeterministic(t *testing.T) {
	a := FreeDB(50, 42)
	b := FreeDB(50, 42)
	for i := range a {
		if a[i].DID != b[i].DID || a[i].Title != b[i].Title || len(a[i].Tracks) != len(b[i].Tracks) {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
	c := FreeDB(50, 43)
	same := 0
	for i := range a {
		if a[i].Title == c[i].Title {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical corpora")
	}
}

func TestFreeDBDiscIDsHaveOneEditTwins(t *testing.T) {
	// The paper: "most IDs do not differ by more than one character",
	// causing false similarity at k=1. A substantial share of ids must
	// have at least one 1-edit twin, without the twin relation exploding
	// into whole blocks.
	cds := FreeDB(200, 1)
	pairs := 0
	for i := 0; i < len(cds); i++ {
		for j := i + 1; j < len(cds); j++ {
			if strdist.Levenshtein(cds[i].DID, cds[j].DID) <= 1 {
				pairs++
			}
		}
	}
	if pairs < 40 {
		t.Errorf("only %d one-edit did pairs in 200 CDs, want >= 40", pairs)
	}
	if pairs > 600 {
		t.Errorf("%d one-edit did pairs in 200 CDs, want moderate fan-out", pairs)
	}
	// All ids are 8 lowercase hex chars and unique.
	seen := map[string]bool{}
	for _, cd := range cds {
		if len(cd.DID) != 8 {
			t.Errorf("did %q not 8 chars", cd.DID)
		}
		if seen[cd.DID] {
			t.Errorf("duplicate did %q", cd.DID)
		}
		seen[cd.DID] = true
	}
}

func TestFreeDBDummyTrackRate(t *testing.T) {
	cds := FreeDB(1000, 7)
	dummies := 0
	for _, cd := range cds {
		if cd.Dummy {
			dummies++
			if !strings.HasPrefix(cd.Tracks[0], "Track ") {
				t.Errorf("dummy cd has real first track %q", cd.Tracks[0])
			}
		}
	}
	// ~20% with generous tolerance
	if dummies < 150 || dummies > 260 {
		t.Errorf("dummy CDs = %d/1000, want ≈200", dummies)
	}
}

func TestFreeDBFieldProfiles(t *testing.T) {
	cds := FreeDB(1000, 3)
	genres := map[string]bool{}
	years := map[int]bool{}
	titles := map[string]bool{}
	withExtra := 0
	for _, cd := range cds {
		if cd.Genre != "" {
			genres[cd.Genre] = true
		}
		years[cd.Year] = true
		titles[cd.Title] = true
		if cd.CDExtra != "" {
			withExtra++
		}
		if len(cd.Tracks) < 6 || len(cd.Tracks) > 14 {
			t.Errorf("track count %d out of range", len(cd.Tracks))
		}
	}
	if len(genres) > 11 {
		t.Errorf("genres = %d, want <= 11 (FreeDB categories)", len(genres))
	}
	if len(titles) != 1000 {
		t.Errorf("titles not unique: %d distinct", len(titles))
	}
	if withExtra < 200 || withExtra > 400 {
		t.Errorf("cdextra present on %d/1000, want ≈300", withExtra)
	}
	if len(years) < 20 {
		t.Errorf("years too concentrated: %d distinct", len(years))
	}
}

func TestFreeDBToXMLMatchesTable5Schema(t *testing.T) {
	cds := FreeDB(30, 5)
	doc := FreeDBToXML(cds)
	if doc.Root.Name != "freedb" {
		t.Fatalf("root = %s", doc.Root.Name)
	}
	if got := len(doc.Root.ChildrenNamed("disc")); got != 30 {
		t.Fatalf("discs = %d", got)
	}
	schema, err := xsd.Infer(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{
		"/freedb/disc/did", "/freedb/disc/artist", "/freedb/disc/title",
		"/freedb/disc/genre", "/freedb/disc/year", "/freedb/disc/tracks",
		"/freedb/disc/tracks/title",
	} {
		if schema.ElementAt(path) == nil {
			t.Errorf("schema missing %s", path)
		}
	}
	// year infers as date, did as key, tracks as complex (Table 5 flags)
	if got := schema.ElementAt("/freedb/disc/year").Type; got != xsd.DTDate {
		t.Errorf("year type = %v", got)
	}
	if !schema.ElementAt("/freedb/disc/did").IsKey {
		t.Error("did should infer as key")
	}
	if schema.ElementAt("/freedb/disc/tracks").HasText() {
		t.Error("tracks should have no text")
	}
	if schema.ElementAt("/freedb/disc/tracks/title").Singleton() {
		t.Error("tracks/title should not be singleton")
	}
}

func TestMoviesDeterministicAndDistinct(t *testing.T) {
	a := Movies(100, 11)
	b := Movies(100, 11)
	for i := range a {
		if a[i].Title != b[i].Title || a[i].PremiereDE != b[i].PremiereDE {
			t.Fatalf("movie generation not deterministic at %d", i)
		}
	}
	titles := map[string]bool{}
	for _, m := range a {
		if titles[m.Title] {
			t.Errorf("duplicate title %q", m.Title)
		}
		titles[m.Title] = true
	}
}

func TestMoviesErrorModel(t *testing.T) {
	ms := Movies(1000, 13)
	kept, aka, skew, sameDate := 0, 0, 0, 0
	for _, m := range ms {
		if m.GermanTitle == m.Title {
			kept++
		}
		if m.AkaTitle != "" {
			if m.AkaTitle != m.Title {
				t.Errorf("aka-title %q != original %q", m.AkaTitle, m.Title)
			}
			aka++
		}
		if m.YearDE != m.Year {
			skew++
		}
		if len(m.ReleaseISO) != 10 || m.ReleaseISO[4] != '-' {
			t.Errorf("bad ISO date %q", m.ReleaseISO)
		}
		if m.PremiereDE != "" {
			if len(m.PremiereDE) != 10 || m.PremiereDE[2] != '.' {
				t.Errorf("bad German date %q", m.PremiereDE)
			}
			iso := m.ReleaseISO
			de := m.PremiereDE
			if de[6:10] == iso[0:4] && de[3:5] == iso[5:7] && de[0:2] == iso[8:10] {
				sameDate++
			}
		}
		if len(m.Genres) != len(m.GenresDE) {
			t.Error("genre lists out of sync")
		}
		if len(m.People) < 2 {
			t.Errorf("movie with %d people", len(m.People))
		}
	}
	check := func(name string, got, lo, hi int) {
		if got < lo || got > hi {
			t.Errorf("%s = %d/1000, want in [%d,%d]", name, got, lo, hi)
		}
	}
	check("kept titles", kept, 380, 520)
	check("aka titles", aka, 580, 720)
	check("year skew", skew, 60, 150)
	check("same premiere date", sameDate, 330, 470)
}

func TestDataset2XMLMatchesTable6Schemas(t *testing.T) {
	ms := Movies(40, 17)
	imdb := IMDBToXML(ms)
	fd := FilmDienstToXML(ms)
	si, err := xsd.Infer(imdb)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := xsd.Infer(fd)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{
		"/imdb/movie/year", "/imdb/movie/title", "/imdb/movie/genre",
		"/imdb/movie/release-date/date", "/imdb/movie/people/actors/actor/name",
	} {
		if si.ElementAt(p) == nil {
			t.Errorf("imdb schema missing %s", p)
		}
	}
	for _, p := range []string{
		"/filmdienst/movie/year", "/filmdienst/movie/movie-title/title",
		"/filmdienst/movie/aka-title/title", "/filmdienst/movie/genres/genre",
		"/filmdienst/movie/premiere", "/filmdienst/movie/people/person/firstname",
		"/filmdienst/movie/people/person/lastname",
	} {
		if sf.ElementAt(p) == nil {
			t.Errorf("filmdienst schema missing %s", p)
		}
	}
	// Table 6 depth profile: title is depth 1 at IMDB but depth 2 at FD,
	// which is why titles only become comparable at r = 2.
	if d := si.ElementAt("/imdb/movie/title").Depth() - si.ElementAt("/imdb/movie").Depth(); d != 1 {
		t.Errorf("imdb title rel depth = %d", d)
	}
	if d := sf.ElementAt("/filmdienst/movie/movie-title/title").Depth() - sf.ElementAt("/filmdienst/movie").Depth(); d != 2 {
		t.Errorf("fd title rel depth = %d", d)
	}
	// aka-title must be optional
	if sf.ElementAt("/filmdienst/movie/aka-title").Mandatory() {
		t.Error("aka-title should be optional")
	}
}

func TestMappingPathsCoverSchemas(t *testing.T) {
	ms := Movies(25, 19)
	si, _ := xsd.Infer(IMDBToXML(ms))
	sf, _ := xsd.Infer(FilmDienstToXML(ms))
	for typ, paths := range Dataset2MappingPaths() {
		for _, p := range paths {
			inIMDB := si.ElementAt(p) != nil
			inFD := sf.ElementAt(p) != nil
			if !inIMDB && !inFD {
				t.Errorf("mapping %s path %s matches neither schema", typ, p)
			}
		}
	}
	cds := FreeDB(25, 19)
	sc, _ := xsd.Infer(FreeDBToXML(cds))
	for typ, paths := range FreeDBMappingPaths() {
		for _, p := range paths {
			if sc.ElementAt(p) == nil && typ != "CDEXTRA" && typ != "GENRE" {
				t.Errorf("freedb mapping %s path %s missing from schema", typ, p)
			}
		}
	}
}

func TestFreeDBSynonymsApplyToGeneratedValues(t *testing.T) {
	syn := FreeDBSynonyms()
	if len(syn) == 0 {
		t.Fatal("no synonyms")
	}
	if syn["rock"] != "rock & roll" {
		t.Errorf("rock synonym = %q", syn["rock"])
	}
	// every synonym key is a generatable value
	genSet := map[string]bool{}
	for _, g := range freedbGenres {
		genSet[g] = true
	}
	for _, e := range cdExtraPhrases {
		genSet[e] = true
	}
	for k := range syn {
		if !genSet[k] {
			t.Errorf("synonym key %q is never generated", k)
		}
	}
}
