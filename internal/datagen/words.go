package datagen

// Vocabulary tables for the synthetic corpora. The lists are sized so that
// artist/title values carry high inverse document frequency while genre,
// year and cdextra stay low-IDF, matching the identifying-power profile
// the paper reports for the FreeDB data (Sec. 6.2).

// freedbGenres are the 11 FreeDB categories, the paper's low-IDF genre
// vocabulary.
var freedbGenres = []string{
	"blues", "classical", "country", "data", "folk",
	"jazz", "misc", "newage", "reggae", "rock", "soul",
}

// genreSynonyms feed the dirty generator's synonym replacement.
var genreSynonyms = map[string]string{
	"rock":      "rock & roll",
	"classical": "classic",
	"newage":    "new age",
	"misc":      "miscellaneous",
	"soul":      "rhythm & blues",
	"country":   "country & western",
}

// cdExtraPhrases is a deliberately tiny vocabulary (low IDF).
var cdExtraPhrases = []string{
	"bonus disc", "remastered", "limited edition", "live recording",
	"digipak", "promo copy", "club edition", "enhanced cd",
	"box set disc", "import", "special edition", "anniversary issue",
}

var cdExtraSynonyms = map[string]string{
	"remastered":      "digitally remastered",
	"limited edition": "ltd. edition",
	"live recording":  "recorded live",
	"promo copy":      "promotional copy",
	"import":          "imported",
}

// firstNames and lastNames compose artist and person names.
var firstNames = []string{
	"Aretha", "Billie", "Chet", "Dizzy", "Ella", "Frank", "Gloria",
	"Howlin", "Isaac", "Janis", "Kurt", "Leonard", "Miles", "Nina",
	"Otis", "Patsy", "Quincy", "Robert", "Sarah", "Thelonious",
	"Ulrich", "Violeta", "Wanda", "Xavier", "Yoko", "Zoot",
	"Albert", "Bessie", "Cab", "Dinah", "Etta", "Fats", "Grant",
	"Hank", "Irma", "John", "Koko", "Lena", "Mahalia", "Nat",
}

var lastNames = []string{
	"Armstrong", "Baker", "Coltrane", "Davis", "Ellington", "Fitzgerald",
	"Gillespie", "Holiday", "Ibrahim", "Jackson", "King", "Lewis",
	"Mingus", "Newton", "Orbison", "Parker", "Quebec", "Reinhardt",
	"Simone", "Turner", "Underwood", "Vaughan", "Waters", "Xenakis",
	"Young", "Zawinul", "Adderley", "Basie", "Calloway", "Domino",
	"Evans", "Franklin", "Getz", "Hawkins", "Iglesias", "Jarrett",
	"Krall", "Laine", "Monk", "Norvo",
}

// titleWords compose CD and track titles (high IDF combinations).
var titleWords = []string{
	"midnight", "river", "golden", "shadow", "electric", "velvet",
	"broken", "summer", "winter", "neon", "crystal", "wild",
	"silent", "burning", "frozen", "scarlet", "hollow", "rising",
	"fading", "distant", "crimson", "silver", "lonely", "restless",
	"saffron", "indigo", "thunder", "paper", "glass", "iron",
	"hidden", "sacred", "twisted", "gentle", "savage", "amber",
	"echoes", "whispers", "dreams", "horizons", "rhythms", "shadows",
	"mirrors", "embers", "tides", "voltage", "avenues", "delta",
}

// movieTitleWords compose English movie titles.
var movieTitleWords = []string{
	"matrix", "signs", "empire", "return", "dark", "city", "lost",
	"highway", "eternal", "sunshine", "blade", "runner", "seven",
	"fight", "club", "memento", "heat", "alien", "predator",
	"gladiator", "braveheart", "titanic", "avatar", "inception",
	"interstellar", "arrival", "departed", "prestige", "island",
	"beach", "mountain", "garden", "station", "hotel", "palace",
	"kingdom", "castle", "bridge", "tunnel", "harbor", "lighthouse",
}

// germanTitleWords translate movie title words for the FilmDienst
// rendering; untranslated words pass through unchanged.
var germanTitleWords = map[string]string{
	"dark": "dunkel", "city": "stadt", "lost": "verloren",
	"highway": "autobahn", "eternal": "ewig", "sunshine": "sonnenschein",
	"seven": "sieben", "fight": "kampf", "club": "klub",
	"island": "insel", "beach": "strand", "mountain": "berg",
	"garden": "garten", "station": "bahnhof", "hotel": "hotel",
	"kingdom": "königreich", "castle": "schloss", "bridge": "brücke",
	"tunnel": "tunnel", "harbor": "hafen", "lighthouse": "leuchtturm",
	"return": "rückkehr", "empire": "imperium", "signs": "zeichen",
}

// movieGenres pairs English and German genre names; several are cognates
// that match exactly across sources, the rest are synonyms that contradict
// without a thesaurus, as the paper observes for Dataset 2.
var movieGenres = []struct{ EN, DE string }{
	{"drama", "drama"},
	{"thriller", "thriller"},
	{"horror", "horror"},
	{"western", "western"},
	{"fantasy", "fantasy"},
	{"musical", "musical"},
	{"comedy", "komödie"},
	{"crime", "krimi"},
	{"romance", "liebesfilm"},
	{"war", "kriegsfilm"},
	{"science fiction", "sciencefiction"},
	{"documentary", "dokumentarfilm"},
}
