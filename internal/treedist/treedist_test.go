package treedist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/xmltree"
)

func node(t *testing.T, s string) *xmltree.Node {
	t.Helper()
	doc, err := xmltree.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return doc.Root
}

func TestDistanceIdentical(t *testing.T) {
	a := node(t, `<a><b>x</b><c><d>y</d></c></a>`)
	b := node(t, `<a><b>x</b><c><d>y</d></c></a>`)
	if got := Distance(a, b); got != 0 {
		t.Errorf("identical trees distance = %d", got)
	}
	if got := Similarity(a, b); got != 1 {
		t.Errorf("identical similarity = %v", got)
	}
}

func TestDistanceKnownCases(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		// single relabel (name)
		{`<a><b/></a>`, `<a><c/></a>`, 1},
		// single relabel (text)
		{`<a><b>x</b></a>`, `<a><b>y</b></a>`, 1},
		// insert one leaf
		{`<a><b/></a>`, `<a><b/><c/></a>`, 1},
		// delete an inner node (children move up)
		{`<a><m><b/><c/></m></a>`, `<a><b/><c/></a>`, 1},
		// empty-ish vs rich
		{`<a/>`, `<a><b/><c/><d/></a>`, 3},
		// completely different single nodes
		{`<x/>`, `<y/>`, 1},
		// the classic Zhang-Shasha example: f(d(a c(b)) e) vs
		// f(c(d(a b)) e) has distance 2
		{`<f><d><a/><c><b/></c></d><e/></f>`, `<f><c><d><a/><b/></d></c><e/></f>`, 2},
	}
	for _, tc := range cases {
		a, b := node(t, tc.a), node(t, tc.b)
		if got := Distance(a, b); got != tc.want {
			t.Errorf("Distance(%s, %s) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestNormalizedRange(t *testing.T) {
	a := node(t, `<a><b>x</b></a>`)
	b := node(t, `<q><r/><s/><t/><u/></q>`)
	n := Normalized(a, b)
	if n <= 0 || n > 1 {
		t.Errorf("Normalized = %v, want in (0,1]", n)
	}
	if got := Normalized(a, a); got != 0 {
		t.Errorf("self normalized = %v", got)
	}
}

// Property: the distance is a metric on random small trees: symmetric,
// zero iff equal (under label+text equality), triangle inequality, and
// bounded by the total node count.
func TestQuickMetricProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomTree(rng, 0)
		b := randomTree(rng, 0)
		c := randomTree(rng, 0)
		dab := Distance(a, b)
		dba := Distance(b, a)
		if dab != dba {
			return false
		}
		if dab > a.CountNodes()+b.CountNodes() {
			return false
		}
		if Distance(a, a) != 0 {
			return false
		}
		dac := Distance(a, c)
		dcb := Distance(c, b)
		return dab <= dac+dcb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: a single applied edit changes the distance by at most 1.
func TestQuickSingleEditBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomTree(rng, 0)
		b := a.Clone()
		// apply one rename somewhere
		nodes := append([]*xmltree.Node{b}, b.Descendants()...)
		nodes[rng.Intn(len(nodes))].Name = "renamed"
		d := Distance(a, b)
		return d <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func randomTree(rng *rand.Rand, depth int) *xmltree.Node {
	names := []string{"a", "b", "c"}
	texts := []string{"", "x", "y"}
	n := xmltree.NewNode(names[rng.Intn(len(names))])
	n.Text = texts[rng.Intn(len(texts))]
	if depth < 3 {
		for i := 0; i < rng.Intn(3); i++ {
			n.AppendChild(randomTree(rng, depth+1))
		}
	}
	return n
}

func BenchmarkDistanceMediumTrees(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	t1 := randomTree(rng, 0)
	t2 := randomTree(rng, 0)
	for i := 0; i < 4; i++ { // widen the trees
		t1.AppendChild(randomTree(rng, 1))
		t2.AppendChild(randomTree(rng, 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Distance(t1, t2)
	}
}
