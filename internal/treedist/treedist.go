// Package treedist implements the Zhang-Shasha ordered tree edit distance
// over xmltree nodes. The paper positions tree edit distance as the
// alternative XML similarity measure (Guha et al. [6]; Sec. 5's outlook
// "we will explore how to adapt tree edit distance ... as similarity
// measure for duplicate detection"), so the library ships it both as a
// future-work feature and as the structural baseline the benchmarks
// compare DogmatiX against.
//
// Costs are unit: deleting a node 1, inserting a node 1, relabeling 1
// when either the element name or the text differs (0 otherwise).
package treedist

import (
	"repro/internal/xmltree"
)

// Distance returns the Zhang-Shasha edit distance between the ordered
// trees rooted at a and b.
func Distance(a, b *xmltree.Node) int {
	ta, tb := index(a), index(b)
	n, m := len(ta.labels)-1, len(tb.labels)-1 // labels are 1-based
	if n == 0 {
		return m
	}
	if m == 0 {
		return n
	}
	td := make([][]int, n+1)
	for i := range td {
		td[i] = make([]int, m+1)
	}
	for _, i := range ta.keyroots {
		for _, j := range tb.keyroots {
			forestDist(ta, tb, i, j, td)
		}
	}
	return td[n][m]
}

// Normalized returns Distance divided by the sum of both tree sizes —
// the maximum possible edit script (delete everything, insert everything)
// — yielding a value in [0,1].
func Normalized(a, b *xmltree.Node) float64 {
	sa, sb := a.CountNodes(), b.CountNodes()
	if sa+sb == 0 {
		return 0
	}
	return float64(Distance(a, b)) / float64(sa+sb)
}

// Similarity returns 1 - Normalized, convenient for thresholded
// classification.
func Similarity(a, b *xmltree.Node) float64 {
	return 1 - Normalized(a, b)
}

type label struct {
	name, text string
}

// indexedTree holds a tree in postorder form for the Zhang-Shasha DP:
// labels[i] is the i-th node in postorder (1-based), lld[i] the postorder
// index of its leftmost leaf descendant, keyroots the ascending list of
// keyroot indexes.
type indexedTree struct {
	labels   []label // 1-based: labels[0] unused
	lld      []int
	keyroots []int
}

func index(root *xmltree.Node) *indexedTree {
	t := &indexedTree{labels: []label{{}}, lld: []int{0}}
	var postorder func(n *xmltree.Node) int // returns leftmost leaf index
	counter := 0
	postorder = func(n *xmltree.Node) int {
		lml := 0
		for i, c := range n.Children {
			childLml := postorder(c)
			if i == 0 {
				lml = childLml
			}
		}
		counter++
		if len(n.Children) == 0 {
			lml = counter
		}
		t.labels = append(t.labels, label{name: n.Name, text: n.Text})
		t.lld = append(t.lld, lml)
		return lml
	}
	postorder(root)

	// keyroots: i is a keyroot iff no j > i has the same leftmost leaf.
	seen := map[int]bool{}
	for i := len(t.labels) - 1; i >= 1; i-- {
		if !seen[t.lld[i]] {
			seen[t.lld[i]] = true
			t.keyroots = append(t.keyroots, i)
		}
	}
	// ascending order
	for i, j := 0, len(t.keyroots)-1; i < j; i, j = i+1, j-1 {
		t.keyroots[i], t.keyroots[j] = t.keyroots[j], t.keyroots[i]
	}
	return t
}

func relabelCost(a, b label) int {
	if a == b {
		return 0
	}
	return 1
}

func forestDist(ta, tb *indexedTree, i, j int, td [][]int) {
	li, lj := ta.lld[i], tb.lld[j]
	m := i - li + 2
	n := j - lj + 2
	fd := make([][]int, m)
	for x := range fd {
		fd[x] = make([]int, n)
	}
	ioff := li - 1
	joff := lj - 1
	for x := 1; x < m; x++ {
		fd[x][0] = fd[x-1][0] + 1 // delete
	}
	for y := 1; y < n; y++ {
		fd[0][y] = fd[0][y-1] + 1 // insert
	}
	for x := 1; x < m; x++ {
		for y := 1; y < n; y++ {
			if ta.lld[x+ioff] == li && tb.lld[y+joff] == lj {
				cost := relabelCost(ta.labels[x+ioff], tb.labels[y+joff])
				fd[x][y] = min3(
					fd[x-1][y]+1,
					fd[x][y-1]+1,
					fd[x-1][y-1]+cost,
				)
				td[x+ioff][y+joff] = fd[x][y]
			} else {
				fd[x][y] = min3(
					fd[x-1][y]+1,
					fd[x][y-1]+1,
					fd[ta.lld[x+ioff]-1-ioff][tb.lld[y+joff]-1-joff]+td[x+ioff][y+joff],
				)
			}
		}
	}
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
