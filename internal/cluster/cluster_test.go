package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestUnionFindBasics(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Sets() != 5 || uf.Size() != 5 {
		t.Fatalf("initial sets=%d size=%d", uf.Sets(), uf.Size())
	}
	if !uf.Union(0, 1) {
		t.Error("first union should merge")
	}
	if uf.Union(1, 0) {
		t.Error("repeated union should not merge")
	}
	if !uf.Same(0, 1) {
		t.Error("0 and 1 should be together")
	}
	if uf.Same(0, 2) {
		t.Error("0 and 2 should be apart")
	}
	if uf.Sets() != 4 {
		t.Errorf("sets = %d, want 4", uf.Sets())
	}
}

func TestTransitivity(t *testing.T) {
	// o1 dup o2, o2 dup o3 => o1 dup o3 (Sec. 2.3 Step 6)
	uf := NewUnionFind(4)
	uf.Union(0, 1)
	uf.Union(1, 2)
	if !uf.Same(0, 2) {
		t.Error("transitivity violated")
	}
	got := uf.Clusters(2)
	if len(got) != 1 || !reflect.DeepEqual(got[0], []int32{0, 1, 2}) {
		t.Errorf("clusters = %v", got)
	}
}

func TestClustersMinSize(t *testing.T) {
	uf := NewUnionFind(5)
	uf.Union(3, 4)
	all := uf.Clusters(1)
	if len(all) != 4 {
		t.Errorf("clusters(1) = %v", all)
	}
	dups := uf.Clusters(2)
	if len(dups) != 1 || !reflect.DeepEqual(dups[0], []int32{3, 4}) {
		t.Errorf("clusters(2) = %v", dups)
	}
}

func TestFromPairs(t *testing.T) {
	got := FromPairs(6, [][2]int32{{0, 1}, {2, 3}, {3, 4}})
	want := [][]int32{{0, 1}, {2, 3, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("FromPairs = %v, want %v", got, want)
	}
	if got := FromPairs(3, nil); len(got) != 0 {
		t.Errorf("no pairs should give no clusters, got %v", got)
	}
}

func TestWriteXMLFig3Format(t *testing.T) {
	clusters := [][]int32{{0, 1}}
	var sb strings.Builder
	err := WriteXML(&sb, clusters, func(i int32) string {
		return fmt.Sprintf("/moviedoc/movie[%d]", i+1)
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"<dupresult>",
		`<dupcluster oid="1">`,
		`<duplicate xpath="/moviedoc/movie[1]"/>`,
		`<duplicate xpath="/moviedoc/movie[2]"/>`,
		"</dupcluster>",
		"</dupresult>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// Property: union-find agrees with a naive reachability closure.
func TestQuickUnionFindClosure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 2
		var pairs [][2]int32
		for i := 0; i < rng.Intn(30); i++ {
			pairs = append(pairs, [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))})
		}
		uf := NewUnionFind(n)
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
			adj[i][i] = true
		}
		for _, p := range pairs {
			uf.Union(p[0], p[1])
			adj[p[0]][p[1]] = true
			adj[p[1]][p[0]] = true
		}
		// Floyd-Warshall closure
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if adj[i][k] && adj[k][j] {
						adj[i][j] = true
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if uf.Same(int32(i), int32(j)) != adj[i][j] {
					return false
				}
			}
		}
		// set count matches the number of distinct closures
		reps := map[int32]bool{}
		for i := 0; i < n; i++ {
			reps[uf.Find(int32(i))] = true
		}
		return len(reps) == uf.Sets()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
