// Package cluster implements Step 6 of the duplicate-detection pipeline:
// computing the transitive closure of the "is-duplicate-of" relation with
// a union-find structure, and rendering the resulting duplicate clusters
// in the dupcluster XML format of Fig. 3.
package cluster

import (
	"fmt"
	"io"
	"sort"
)

// UnionFind is a classic disjoint-set forest with path compression and
// union by rank.
type UnionFind struct {
	parent []int32
	rank   []uint8
	sets   int
}

// NewUnionFind creates n singleton sets, ids 0..n-1.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int32, n),
		rank:   make([]uint8, n),
		sets:   n,
	}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
	}
	return uf
}

// Find returns the representative of x's set.
func (u *UnionFind) Find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

// Union merges the sets of a and b; it reports whether a merge happened.
func (u *UnionFind) Union(a, b int32) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.sets--
	return true
}

// Same reports whether a and b are in the same set.
func (u *UnionFind) Same(a, b int32) bool { return u.Find(a) == u.Find(b) }

// Sets returns the current number of disjoint sets.
func (u *UnionFind) Sets() int { return u.sets }

// Size returns the number of elements.
func (u *UnionFind) Size() int { return len(u.parent) }

// Clusters returns all sets with at least minSize members, each sorted
// ascending, ordered by their smallest member.
func (u *UnionFind) Clusters(minSize int) [][]int32 {
	groups := map[int32][]int32{}
	for i := range u.parent {
		r := u.Find(int32(i))
		groups[r] = append(groups[r], int32(i))
	}
	var out [][]int32
	for _, members := range groups {
		if len(members) < minSize {
			continue
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// FromPairs builds the transitive closure of the given duplicate pairs
// over n objects and returns the clusters with two or more members.
func FromPairs(n int, pairs [][2]int32) [][]int32 {
	return FromPairsFunc(n, len(pairs), func(i int) (int32, int32) {
		return pairs[i][0], pairs[i][1]
	})
}

// FromPairsFunc is FromPairs over count pairs produced by at(i), sparing
// callers that already hold pairs in another shape the intermediate copy.
// n may exceed the number of live objects: the incremental pipeline
// passes the full candidate ID span, so removed IDs participate as
// permanent singletons — they can never appear in a pair, and clusters
// keep only sets of two or more, so they never surface in the output.
func FromPairsFunc(n, count int, at func(i int) (int32, int32)) [][]int32 {
	uf := NewUnionFind(n)
	for i := 0; i < count; i++ {
		uf.Union(at(i))
	}
	return uf.Clusters(2)
}

// WriteXML renders clusters in the Fig. 3 format: one dupcluster element
// per cluster, identified by a unique oid, with the member objects listed
// by their XPaths.
//
//	<dupresult>
//	  <dupcluster oid="1">
//	    <duplicate xpath="/moviedoc/movie[1]"/>
//	    <duplicate xpath="/moviedoc/movie[2]"/>
//	  </dupcluster>
//	</dupresult>
func WriteXML(w io.Writer, clusters [][]int32, xpathOf func(int32) string) error {
	if _, err := io.WriteString(w, "<dupresult>\n"); err != nil {
		return err
	}
	for i, members := range clusters {
		if _, err := fmt.Fprintf(w, "  <dupcluster oid=\"%d\">\n", i+1); err != nil {
			return err
		}
		for _, m := range members {
			if _, err := fmt.Fprintf(w, "    <duplicate xpath=%q/>\n", xpathOf(m)); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "  </dupcluster>\n"); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "</dupresult>\n")
	return err
}
