package xsd

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/xmltree"
)

// cdXSD mirrors the Dataset 1 schema of Table 5: disc with did (string,
// ME, SE), artist (string, ME, not SE), title (string, ME, not SE), genre
// (string, not ME, SE), year (date, ME, SE), cdextra (string, not ME, not
// SE), tracks (complex, ME, SE) and tracks/title (string, ME, not SE).
const cdXSD = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="freedb">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="disc" minOccurs="0" maxOccurs="unbounded">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="did" type="xs:ID"/>
              <xs:element name="artist" type="xs:string" maxOccurs="unbounded"/>
              <xs:element name="title" type="xs:string" maxOccurs="unbounded"/>
              <xs:element name="genre" type="xs:string" minOccurs="0"/>
              <xs:element name="year" type="xs:gYear"/>
              <xs:element name="cdextra" type="xs:string" minOccurs="0" maxOccurs="unbounded"/>
              <xs:element name="tracks">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="title" type="xs:string" maxOccurs="unbounded"/>
                  </xs:sequence>
                </xs:complexType>
              </xs:element>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>`

func mustParseXSD(t *testing.T, s string) *Schema {
	t.Helper()
	schema, err := ParseString(s)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	return schema
}

func TestParseCDSchemaStructure(t *testing.T) {
	s := mustParseXSD(t, cdXSD)
	if s.Root.Name != "freedb" {
		t.Fatalf("root = %q", s.Root.Name)
	}
	disc := s.ElementAt("/freedb/disc")
	if disc == nil {
		t.Fatal("no /freedb/disc")
	}
	if len(disc.Children) != 7 {
		t.Fatalf("disc children = %d, want 7", len(disc.Children))
	}
	if got := s.ElementAt("/freedb/disc/tracks/title"); got == nil {
		t.Fatal("no /freedb/disc/tracks/title")
	}
	if d := disc.Depth(); d != 1 {
		t.Errorf("disc depth = %d", d)
	}
	if d := s.ElementAt("/freedb/disc/tracks/title").Depth(); d != 3 {
		t.Errorf("tracks/title depth = %d", d)
	}
}

func TestParseCDSchemaFlags(t *testing.T) {
	s := mustParseXSD(t, cdXSD)
	cases := []struct {
		path string
		typ  DataType
		me   bool
		se   bool
		text bool
	}{
		{"/freedb/disc/did", DTString, true, true, true},
		{"/freedb/disc/artist", DTString, true, false, true},
		{"/freedb/disc/title", DTString, true, false, true},
		{"/freedb/disc/genre", DTString, false, true, true},
		{"/freedb/disc/year", DTDate, true, true, true},
		{"/freedb/disc/cdextra", DTString, false, false, true},
		{"/freedb/disc/tracks", DTComplex, true, true, false},
		{"/freedb/disc/tracks/title", DTString, true, false, true},
	}
	for _, tc := range cases {
		e := s.ElementAt(tc.path)
		if e == nil {
			t.Errorf("missing %s", tc.path)
			continue
		}
		if e.Type != tc.typ {
			t.Errorf("%s type = %v, want %v", tc.path, e.Type, tc.typ)
		}
		if e.Mandatory() != tc.me {
			t.Errorf("%s mandatory = %v, want %v", tc.path, e.Mandatory(), tc.me)
		}
		if e.Singleton() != tc.se {
			t.Errorf("%s singleton = %v, want %v", tc.path, e.Singleton(), tc.se)
		}
		if e.HasText() != tc.text {
			t.Errorf("%s hasText = %v, want %v", tc.path, e.HasText(), tc.text)
		}
	}
	// did is an ID so it counts as a key per Condition 3.
	if !s.ElementAt("/freedb/disc/did").IsKey {
		t.Error("did should be a key")
	}
}

func TestFlagString(t *testing.T) {
	s := mustParseXSD(t, cdXSD)
	cases := map[string]string{
		"/freedb/disc/did":          "string, ME, SE",
		"/freedb/disc/artist":       "string, ME, not SE",
		"/freedb/disc/genre":        "string, not ME, SE",
		"/freedb/disc/year":         "date, ME, SE",
		"/freedb/disc/cdextra":      "string, not ME, not SE",
		"/freedb/disc/tracks":       "complex, ME, SE",
		"/freedb/disc/tracks/title": "string, ME, not SE",
	}
	for path, want := range cases {
		if got := s.ElementAt(path).FlagString(); got != want {
			t.Errorf("FlagString(%s) = %q, want %q", path, got, want)
		}
	}
}

func TestParseChoiceMembersOptional(t *testing.T) {
	s := mustParseXSD(t, `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	  <xs:element name="r">
	    <xs:complexType>
	      <xs:choice>
	        <xs:element name="a" type="xs:string"/>
	        <xs:element name="b" type="xs:string"/>
	      </xs:choice>
	    </xs:complexType>
	  </xs:element>
	</xs:schema>`)
	if s.ElementAt("/r/a").Mandatory() || s.ElementAt("/r/b").Mandatory() {
		t.Error("choice members should not be mandatory")
	}
}

func TestParseNamedTypes(t *testing.T) {
	s := mustParseXSD(t, `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	  <xs:complexType name="PersonType">
	    <xs:sequence>
	      <xs:element name="name" type="xs:string"/>
	    </xs:sequence>
	  </xs:complexType>
	  <xs:simpleType name="YearType">
	    <xs:restriction base="xs:gYear"/>
	  </xs:simpleType>
	  <xs:element name="r">
	    <xs:complexType>
	      <xs:sequence>
	        <xs:element name="person" type="PersonType"/>
	        <xs:element name="year" type="YearType"/>
	      </xs:sequence>
	    </xs:complexType>
	  </xs:element>
	</xs:schema>`)
	if got := s.ElementAt("/r/person/name"); got == nil || got.Type != DTString {
		t.Errorf("named complex type not resolved: %+v", got)
	}
	if got := s.ElementAt("/r/year"); got == nil || got.Type != DTDate {
		t.Errorf("named simple type not resolved: %+v", got)
	}
}

func TestParseMixedContent(t *testing.T) {
	s := mustParseXSD(t, `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	  <xs:element name="r">
	    <xs:complexType mixed="true">
	      <xs:sequence>
	        <xs:element name="em" type="xs:string"/>
	      </xs:sequence>
	    </xs:complexType>
	  </xs:element>
	</xs:schema>`)
	if s.Root.Content != CMMixed {
		t.Errorf("content = %v, want mixed", s.Root.Content)
	}
	if !s.Root.HasText() {
		t.Error("mixed content should admit text")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"not schema", `<foo/>`},
		{"no elements", `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"/>`},
		{"unknown type", `<xs:schema xmlns:xs="x"><xs:element name="a" type="NoSuch"/></xs:schema>`},
		{"bad minOccurs", `<xs:schema xmlns:xs="x"><xs:element name="a" type="xs:string" minOccurs="-1"/></xs:schema>`},
		{"bad maxOccurs", `<xs:schema xmlns:xs="x"><xs:element name="a" type="xs:string" maxOccurs="zero"/></xs:schema>`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseString(tc.in); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestBuiltinTypes(t *testing.T) {
	cases := map[string]DataType{
		"xs:string": DTString, "xs:ID": DTString, "xs:token": DTString,
		"xs:date": DTDate, "xs:gYear": DTDate, "xs:dateTime": DTDate,
		"xs:int": DTNumeric, "xs:decimal": DTNumeric,
		"xs:boolean": DTBoolean,
	}
	for name, want := range cases {
		got, ok := builtinType(name)
		if !ok || got != want {
			t.Errorf("builtinType(%s) = %v,%v want %v", name, got, ok, want)
		}
	}
	if _, ok := builtinType("MyType"); ok {
		t.Error("MyType should not be builtin")
	}
}

func TestInferValueType(t *testing.T) {
	cases := map[string]DataType{
		"1999":       DTDate,
		"2002":       DTDate,
		"0042":       DTNumeric,
		"1999-10-13": DTDate,
		"13.10.1999": DTDate,
		"42":         DTNumeric,
		"-3.5":       DTNumeric,
		"true":       DTBoolean,
		"The Matrix": DTString,
		"":           DTUnknown,
	}
	for in, want := range cases {
		if got := InferValueType(in); got != want {
			t.Errorf("InferValueType(%q) = %v, want %v", in, got, want)
		}
	}
}

const cdInstance = `<freedb>
  <disc><did>a1</did><artist>X</artist><title>T1</title><genre>rock</genre><year>1999</year>
    <tracks><title>s1</title><title>s2</title></tracks></disc>
  <disc><did>a2</did><artist>Y</artist><title>T2</title><year>2001</year>
    <tracks><title>s3</title></tracks></disc>
</freedb>`

func TestInferFromInstance(t *testing.T) {
	doc, err := xmltree.ParseString(cdInstance)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Infer(doc)
	if err != nil {
		t.Fatal(err)
	}
	disc := s.ElementAt("/freedb/disc")
	if disc == nil {
		t.Fatal("no disc inferred")
	}
	if disc.Singleton() {
		t.Error("disc should not be singleton (two instances)")
	}
	genre := s.ElementAt("/freedb/disc/genre")
	if genre == nil || genre.Mandatory() {
		t.Errorf("genre should be optional, got %+v", genre)
	}
	year := s.ElementAt("/freedb/disc/year")
	if year == nil || year.Type != DTDate {
		t.Errorf("year should infer as date, got %+v", year)
	}
	did := s.ElementAt("/freedb/disc/did")
	if did == nil || !did.IsKey {
		t.Errorf("did should infer as key, got %+v", did)
	}
	tracks := s.ElementAt("/freedb/disc/tracks")
	if tracks == nil || tracks.Content != CMComplex || tracks.HasText() {
		t.Errorf("tracks should be complex, got %+v", tracks)
	}
	tt := s.ElementAt("/freedb/disc/tracks/title")
	if tt == nil || tt.Singleton() {
		t.Errorf("tracks/title should not be singleton, got %+v", tt)
	}
	artist := s.ElementAt("/freedb/disc/artist")
	if artist == nil || !artist.Mandatory() || !artist.Singleton() {
		t.Errorf("artist flags wrong: %+v", artist)
	}
}

func TestInferMultipleDocs(t *testing.T) {
	d1, _ := xmltree.ParseString(`<r><m><title>A</title></m></r>`)
	d2, _ := xmltree.ParseString(`<r><m><title>B</title><aka>C</aka></m></r>`)
	s, err := Infer(d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	aka := s.ElementAt("/r/m/aka")
	if aka == nil || aka.Mandatory() {
		t.Errorf("aka should be optional, got %+v", aka)
	}
	title := s.ElementAt("/r/m/title")
	if title == nil || !title.Mandatory() {
		t.Errorf("title should be mandatory, got %+v", title)
	}
}

func TestInferRejectsMismatchedRoots(t *testing.T) {
	d1, _ := xmltree.ParseString(`<a/>`)
	d2, _ := xmltree.ParseString(`<b/>`)
	if _, err := Infer(d1, d2); err == nil {
		t.Error("want error for mismatched roots")
	}
	if _, err := Infer(); err == nil {
		t.Error("want error for no documents")
	}
}

func TestInferMixedTypeDegradesToString(t *testing.T) {
	doc, _ := xmltree.ParseString(`<r><v>1999</v><v>hello</v></r>`)
	s, err := Infer(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ElementAt("/r/v").Type; got != DTString {
		t.Errorf("mixed evidence type = %v, want string", got)
	}
}

// Inference is idempotent with respect to the facts it extracts: inferring
// from a doc, then from the same doc again, yields identical schemas.
func TestInferDeterministic(t *testing.T) {
	doc, _ := xmltree.ParseString(cdInstance)
	s1, err := Infer(doc)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Infer(doc)
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := s1.Elements(), s2.Elements()
	if len(e1) != len(e2) {
		t.Fatalf("element counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i].Path != e2[i].Path || e1[i].FlagString() != e2[i].FlagString() {
			t.Errorf("element %d differs: %s %s vs %s %s",
				i, e1[i].Path, e1[i].FlagString(), e2[i].Path, e2[i].FlagString())
		}
	}
}

func TestElementsDocOrder(t *testing.T) {
	s := mustParseXSD(t, cdXSD)
	var paths []string
	for _, e := range s.Elements() {
		paths = append(paths, e.Path)
	}
	want := "/freedb /freedb/disc /freedb/disc/did /freedb/disc/artist /freedb/disc/title /freedb/disc/genre /freedb/disc/year /freedb/disc/cdextra /freedb/disc/tracks /freedb/disc/tracks/title"
	if got := strings.Join(paths, " "); got != want {
		t.Errorf("order = %s", got)
	}
}

// TestInferReaderMatchesInfer is the streaming-inference contract: for
// any document, InferReader over the serialized bytes must derive exactly
// the schema Infer derives from the parsed tree — structure, content
// models, data types, cardinalities and key flags alike.
func TestInferReaderMatchesInfer(t *testing.T) {
	const doc = `<freedb>
  <disc><did>d1</did><artist>Orb</artist><title>Blue</title>
    <tracks><track>one</track><track>two</track></tracks></disc>
  <disc><did>d2</did><artist>Orb</artist><year>1998</year>
    <tracks><track>uno</track></tracks></disc>
</freedb>`
	parsed, err := xmltree.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Infer(parsed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := InferReader(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if g, w := schemaFacts(got), schemaFacts(want); g != w {
		t.Errorf("streaming inference diverges\n got: %s\nwant: %s", g, w)
	}
	// And again over a serialize → reparse round trip, the way streaming
	// corpora on disk are produced.
	var buf strings.Builder
	if err := parsed.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	got2, err := InferReader(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g, w := schemaFacts(got2), schemaFacts(want); g != w {
		t.Errorf("round-tripped streaming inference diverges\n got: %s\nwant: %s", g, w)
	}
}

// schemaFacts flattens every inferred fact of a schema into one
// comparable string.
func schemaFacts(s *Schema) string {
	var sb strings.Builder
	s.Root.Walk(func(e *Element) bool {
		fmt.Fprintf(&sb, "%s type=%s content=%s min=%d max=%d key=%v\n",
			e.Path, e.Type, e.Content, e.MinOccurs, e.MaxOccurs, e.IsKey)
		return true
	})
	return sb.String()
}

func TestInferReaderErrors(t *testing.T) {
	for _, tc := range []struct{ name, doc, wantErr string }{
		{"empty", "", "empty document"},
		{"multiple roots", "<a/><a/>", "multiple root"},
		{"malformed", "<a><b></a>", "syntax error"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := InferReader(strings.NewReader(tc.doc))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}
