// Package xsd implements the XML Schema subset DogmatiX relies on. The
// paper's description-selection heuristics (Section 4) read four properties
// off the schema: the tree structure (for r-distant / k-closest selection),
// the content model (Condition 1), the data type (Condition 2), and the
// cardinality/optionality of parent-child relations (Conditions 3 and 4).
//
// The package parses XSD documents covering xs:element, inline and named
// xs:complexType (sequence/choice/all, mixed), xs:simpleType, minOccurs,
// maxOccurs, nillable and ID/key typing. It can also infer a schema from
// instance documents (Infer), which is how the experiments derive schema
// facts for generated corpora without shipping hand-written XSDs.
package xsd

import (
	"encoding/xml"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/xmltree"
)

// DataType is the coarse data type classification Condition 2 needs.
type DataType int

const (
	DTUnknown DataType = iota
	DTString
	DTDate
	DTNumeric
	DTBoolean
	DTComplex // element has no simple value at all
)

func (d DataType) String() string {
	switch d {
	case DTString:
		return "string"
	case DTDate:
		return "date"
	case DTNumeric:
		return "numeric"
	case DTBoolean:
		return "boolean"
	case DTComplex:
		return "complex"
	default:
		return "unknown"
	}
}

// ContentModel mirrors the XML Schema content models of Condition 1.
type ContentModel int

const (
	CMEmpty ContentModel = iota
	CMSimple
	CMComplex
	CMMixed
)

func (c ContentModel) String() string {
	switch c {
	case CMSimple:
		return "simple"
	case CMComplex:
		return "complex"
	case CMMixed:
		return "mixed"
	default:
		return "empty"
	}
}

// Unbounded is the MaxOccurs value for maxOccurs="unbounded".
const Unbounded = -1

// Element is one element declaration in the schema tree.
type Element struct {
	Name     string
	Path     string // absolute schema path, e.g. /moviedoc/movie/title
	Parent   *Element
	Children []*Element

	Type     DataType
	TypeName string // raw XSD type name, e.g. xs:string
	Content  ContentModel

	MinOccurs int
	MaxOccurs int // Unbounded (-1) for maxOccurs="unbounded"
	Nillable  bool
	IsKey     bool // xs:ID typed or flagged as key
}

// Depth returns the number of ancestors (the root element has depth 0).
func (e *Element) Depth() int {
	d := 0
	for p := e.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// Mandatory reports whether e is mandatory to its parent in the sense of
// Condition 3: minOccurs >= 1 and not nillable, or declared as a key/ID.
func (e *Element) Mandatory() bool {
	if e.IsKey {
		return true
	}
	return e.MinOccurs >= 1 && !e.Nillable
}

// Singleton reports whether e is in a 1:1 relation with its parent in the
// sense of Condition 4: maxOccurs == 1.
func (e *Element) Singleton() bool {
	return e.MaxOccurs == 1
}

// HasText reports whether the content model admits a text node (simple or
// mixed), which is what Condition 1 selects for.
func (e *Element) HasText() bool {
	return e.Content == CMSimple || e.Content == CMMixed
}

// Child returns the child declaration with the given name, or nil.
func (e *Element) Child(name string) *Element {
	for _, c := range e.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Walk visits e and all declarations below it in document order.
func (e *Element) Walk(fn func(*Element) bool) {
	if !fn(e) {
		return
	}
	for _, c := range e.Children {
		c.Walk(fn)
	}
}

// FlagString renders the (type, ME, SE) triple the paper prints in
// Tables 5 and 6, e.g. "string, ME, not SE".
func (e *Element) FlagString() string {
	t := e.Type.String()
	if e.Content == CMComplex || e.Content == CMEmpty {
		t = "complex"
	}
	me := "ME"
	if !e.Mandatory() {
		me = "not ME"
	}
	se := "SE"
	if !e.Singleton() {
		se = "not SE"
	}
	return fmt.Sprintf("%s, %s, %s", t, me, se)
}

// Schema is a parsed or inferred schema with a single root element.
type Schema struct {
	Root   *Element
	byPath map[string]*Element
}

// ElementAt returns the declaration at the given absolute schema path, or
// nil if the schema does not declare it.
func (s *Schema) ElementAt(path string) *Element {
	return s.byPath[path]
}

// Elements returns all declarations in document order.
func (s *Schema) Elements() []*Element {
	var out []*Element
	s.Root.Walk(func(e *Element) bool {
		out = append(out, e)
		return true
	})
	return out
}

// index (re)builds the path lookup table and path strings.
func (s *Schema) index() {
	s.byPath = map[string]*Element{}
	var walk func(e *Element, prefix string)
	walk = func(e *Element, prefix string) {
		e.Path = prefix + "/" + e.Name
		s.byPath[e.Path] = e
		for _, c := range e.Children {
			c.Parent = e
			walk(c, e.Path)
		}
	}
	walk(s.Root, "")
}

// Parse reads an XSD document and builds the schema tree rooted at the
// first top-level element declaration.
func Parse(r io.Reader) (*Schema, error) {
	doc, err := xmltree.Parse(r)
	if err != nil {
		return nil, fmt.Errorf("xsd: %w", err)
	}
	if doc.Root.Name != "schema" {
		return nil, fmt.Errorf("xsd: root element is %q, want schema", doc.Root.Name)
	}
	p := &parser{
		namedComplex: map[string]*xmltree.Node{},
		namedSimple:  map[string]*xmltree.Node{},
	}
	var rootDecl *xmltree.Node
	for _, c := range doc.Root.Children {
		switch c.Name {
		case "element":
			if rootDecl == nil {
				rootDecl = c
			}
		case "complexType":
			if name, ok := c.Attr("name"); ok {
				p.namedComplex[name] = c
			}
		case "simpleType":
			if name, ok := c.Attr("name"); ok {
				p.namedSimple[name] = c
			}
		}
	}
	if rootDecl == nil {
		return nil, fmt.Errorf("xsd: no top-level element declaration")
	}
	root, err := p.element(rootDecl, 0)
	if err != nil {
		return nil, err
	}
	s := &Schema{Root: root}
	s.index()
	return s, nil
}

// ParseString is a convenience wrapper around Parse.
func ParseString(s string) (*Schema, error) {
	return Parse(strings.NewReader(s))
}

type parser struct {
	namedComplex map[string]*xmltree.Node
	namedSimple  map[string]*xmltree.Node
	depth        int
}

func (p *parser) element(decl *xmltree.Node, depth int) (*Element, error) {
	if depth > 64 {
		return nil, fmt.Errorf("xsd: schema nesting too deep (recursive type?)")
	}
	name, ok := decl.Attr("name")
	if !ok {
		if ref, isRef := decl.Attr("ref"); isRef {
			return nil, fmt.Errorf("xsd: element ref=%q not supported; declare inline", ref)
		}
		return nil, fmt.Errorf("xsd: element declaration without name")
	}
	e := &Element{
		Name:      name,
		MinOccurs: 1,
		MaxOccurs: 1,
		Type:      DTUnknown,
	}
	if v, ok := decl.Attr("minOccurs"); ok {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("xsd: element %s: bad minOccurs %q", name, v)
		}
		e.MinOccurs = n
	}
	if v, ok := decl.Attr("maxOccurs"); ok {
		if v == "unbounded" {
			e.MaxOccurs = Unbounded
		} else {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("xsd: element %s: bad maxOccurs %q", name, v)
			}
			e.MaxOccurs = n
		}
	}
	if v, ok := decl.Attr("nillable"); ok {
		e.Nillable = v == "true" || v == "1"
	}
	if v, ok := decl.Attr("key"); ok { // dogmatix extension shortcut
		e.IsKey = v == "true" || v == "1"
	}

	// Resolve the type: explicit type attribute, inline complexType, or
	// inline simpleType. Default (none of those) is xs:string-like simple
	// content, matching common schema authoring for leaf elements.
	if tn, ok := decl.Attr("type"); ok {
		e.TypeName = tn
		if bt, isBuiltin := builtinType(tn); isBuiltin {
			e.Type = bt
			e.Content = CMSimple
			if localName(tn) == "ID" {
				e.IsKey = true
			}
		} else if ct, found := p.namedComplex[localName(tn)]; found {
			if err := p.complexType(e, ct, depth); err != nil {
				return nil, err
			}
		} else if st, found := p.namedSimple[localName(tn)]; found {
			e.Type = simpleTypeBase(st)
			e.Content = CMSimple
		} else {
			return nil, fmt.Errorf("xsd: element %s: unknown type %q", name, tn)
		}
	} else if ct := decl.Child("complexType"); ct != nil {
		if err := p.complexType(e, ct, depth); err != nil {
			return nil, err
		}
	} else if st := decl.Child("simpleType"); st != nil {
		e.Type = simpleTypeBase(st)
		e.Content = CMSimple
	} else {
		e.Type = DTString
		e.Content = CMSimple
	}
	return e, nil
}

func (p *parser) complexType(e *Element, ct *xmltree.Node, depth int) error {
	mixed := false
	if v, ok := ct.Attr("mixed"); ok {
		mixed = v == "true" || v == "1"
	}
	var collect func(n *xmltree.Node, optional bool) error
	collect = func(n *xmltree.Node, optional bool) error {
		for _, c := range n.Children {
			switch c.Name {
			case "element":
				child, err := p.element(c, depth+1)
				if err != nil {
					return err
				}
				if optional {
					child.MinOccurs = 0
				}
				e.Children = append(e.Children, child)
			case "sequence", "all":
				if err := collect(c, optional); err != nil {
					return err
				}
			case "choice":
				// Members of a choice are individually optional.
				if err := collect(c, true); err != nil {
					return err
				}
			case "any":
				// xs:any admits arbitrary content; nothing to declare.
			}
		}
		return nil
	}
	if err := collect(ct, false); err != nil {
		return err
	}
	switch {
	case len(e.Children) == 0 && mixed:
		e.Content = CMMixed
		e.Type = DTString
	case len(e.Children) == 0:
		e.Content = CMEmpty
		e.Type = DTComplex
	case mixed:
		e.Content = CMMixed
		e.Type = DTString
	default:
		e.Content = CMComplex
		e.Type = DTComplex
	}
	return nil
}

func localName(qname string) string {
	if i := strings.LastIndexByte(qname, ':'); i >= 0 {
		return qname[i+1:]
	}
	return qname
}

func builtinType(qname string) (DataType, bool) {
	switch localName(qname) {
	case "string", "normalizedString", "token", "ID", "IDREF", "NMTOKEN", "anyURI", "Name", "NCName":
		return DTString, true
	case "date", "gYear", "gYearMonth", "dateTime", "time", "duration":
		return DTDate, true
	case "int", "integer", "long", "short", "byte", "decimal", "float", "double",
		"positiveInteger", "nonNegativeInteger", "negativeInteger", "unsignedInt", "unsignedLong":
		return DTNumeric, true
	case "boolean":
		return DTBoolean, true
	default:
		return DTUnknown, false
	}
}

func simpleTypeBase(st *xmltree.Node) DataType {
	if r := st.Child("restriction"); r != nil {
		if base, ok := r.Attr("base"); ok {
			if dt, isBuiltin := builtinType(base); isBuiltin {
				return dt
			}
		}
	}
	return DTString
}

var (
	yearRE    = regexp.MustCompile(`^\d{4}$`)
	isoDateRE = regexp.MustCompile(`^\d{4}-\d{2}-\d{2}$`)
	deDateRE  = regexp.MustCompile(`^\d{1,2}\.\d{1,2}\.\d{4}$`)
	numberRE  = regexp.MustCompile(`^-?\d+([.,]\d+)?$`)
)

// InferValueType classifies a text value the way Infer does: four-digit
// years and common date formats are DTDate, plain numbers are DTNumeric,
// everything else DTString.
func InferValueType(v string) DataType {
	switch {
	case v == "":
		return DTUnknown
	case yearRE.MatchString(v):
		n, _ := strconv.Atoi(v)
		if n >= 1000 && n <= 2999 {
			return DTDate
		}
		return DTNumeric
	case isoDateRE.MatchString(v), deDateRE.MatchString(v):
		return DTDate
	case numberRE.MatchString(v):
		return DTNumeric
	case v == "true" || v == "false":
		return DTBoolean
	default:
		return DTString
	}
}

// inferStats accumulates the per-schema-path evidence inference builds a
// schema from. One instance exists per distinct schema path.
type inferStats struct {
	elem        *Element
	hasText     bool
	hasChild    bool
	parents     int // parent instances observed
	occurrences int
	present     int // parent instances containing >=1
	maxPer      int
	posSum      float64 // sum of first-occurrence sibling indexes
	posCount    int
	values      map[string]int
	valueCount  int
	typeVotes   map[DataType]int
}

// inferFrame is one open element while evidence is collected. Text is the
// raw concatenated character data (trimmed at close, matching
// xmltree.Parse), counts/firstPos the per-child-name occurrence
// bookkeeping and childIdx the running index over all children.
type inferFrame struct {
	path     string
	text     strings.Builder
	counts   map[string]int
	firstPos map[string]int
	childIdx int
}

// inferBuilder is the event-driven core of schema inference. Both Infer
// (fed from a materialized tree walk) and InferReader (fed from
// encoding/xml token events) drive the same builder, so the streaming
// variant is guaranteed to derive the identical schema.
type inferBuilder struct {
	byPath   map[string]*inferStats
	order    []string
	stack    []*inferFrame
	rootName string
}

func newInferBuilder() *inferBuilder {
	return &inferBuilder{byPath: map[string]*inferStats{}}
}

func (b *inferBuilder) stats(path string) *inferStats {
	st, ok := b.byPath[path]
	if !ok {
		st = &inferStats{values: map[string]int{}, typeVotes: map[DataType]int{}}
		b.byPath[path] = st
		b.order = append(b.order, path)
	}
	return st
}

// open records the start of an element. Roots of successive documents must
// share one name, mirroring the multi-document contract of Infer.
func (b *inferBuilder) open(name string) error {
	var path string
	if len(b.stack) == 0 {
		if b.rootName == "" {
			b.rootName = name
		} else if b.rootName != name {
			return fmt.Errorf("xsd: documents have different roots %q vs %q", b.rootName, name)
		}
		path = "/" + name
	} else {
		parent := b.stack[len(b.stack)-1]
		if _, seen := parent.counts[name]; !seen {
			parent.firstPos[name] = parent.childIdx
		}
		parent.counts[name]++
		parent.childIdx++
		path = parent.path + "/" + name
	}
	b.stats(path).occurrences++
	b.stack = append(b.stack, &inferFrame{
		path:     path,
		counts:   map[string]int{},
		firstPos: map[string]int{},
	})
	return nil
}

// text appends raw character data to the open element.
func (b *inferBuilder) text(s string) {
	if len(b.stack) > 0 {
		b.stack[len(b.stack)-1].text.WriteString(s)
	}
}

// close records the end of the open element, folding its text and
// per-child-name occurrence evidence into the path stats.
func (b *inferBuilder) close() {
	f := b.stack[len(b.stack)-1]
	b.stack = b.stack[:len(b.stack)-1]
	st := b.byPath[f.path]
	if txt := strings.TrimSpace(f.text.String()); txt != "" {
		st.hasText = true
		st.values[txt]++
		st.valueCount++
		st.typeVotes[InferValueType(txt)]++
	}
	if f.childIdx > 0 {
		st.hasChild = true
	}
	for name, cnt := range f.counts {
		cst := b.byPath[f.path+"/"+name]
		cst.present++
		if cnt > cst.maxPer {
			cst.maxPer = cnt
		}
		cst.posSum += float64(f.firstPos[name])
		cst.posCount++
	}
}

// walkDoc feeds one materialized document through the event interface.
func (b *inferBuilder) walkDoc(d *xmltree.Document) error {
	var walk func(n *xmltree.Node) error
	walk = func(n *xmltree.Node) error {
		if err := b.open(n.Name); err != nil {
			return err
		}
		b.text(n.Text)
		for _, c := range n.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		b.close()
		return nil
	}
	return walk(d.Root)
}

// Infer derives a schema from instance documents. All documents must share
// the same root element name. Inferred facts: the element tree, per-element
// minOccurs (0 if any parent instance lacks the child), maxOccurs (>1 or
// Unbounded if any parent holds several), content model (from observed text
// and children), and the data type (from observed values; mixed evidence
// degrades to string). Elements named "*id" or "*did" whose values are
// unique across instances are flagged as keys, mirroring the ID/key clause
// of Condition 3.
func Infer(docs ...*xmltree.Document) (*Schema, error) {
	if len(docs) == 0 {
		return nil, fmt.Errorf("xsd: Infer needs at least one document")
	}
	b := newInferBuilder()
	for _, d := range docs {
		if err := b.walkDoc(d); err != nil {
			return nil, err
		}
	}
	return b.build()
}

// InferReader is the single-pass streaming variant of Infer: it derives
// the schema of one document directly from encoding/xml token events,
// never materializing the tree, so inference memory is bounded by element
// depth plus the distinct-path/value statistics — not document size. It
// accepts exactly the token streams xmltree.Parse accepts (comments,
// processing instructions and directives are skipped; CDATA merges into
// character data) and derives the same schema Infer derives from the
// parsed tree.
func InferReader(r io.Reader) (*Schema, error) {
	b := newInferBuilder()
	dec := xml.NewDecoder(r)
	sawRoot := false
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xsd: infer: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if len(b.stack) == 0 {
				if sawRoot {
					return nil, fmt.Errorf("xsd: infer: multiple root elements")
				}
				sawRoot = true
			}
			if err := b.open(t.Name.Local); err != nil {
				return nil, err
			}
		case xml.EndElement:
			if len(b.stack) == 0 {
				return nil, fmt.Errorf("xsd: infer: unbalanced end element %s", t.Name.Local)
			}
			b.close()
		case xml.CharData:
			b.text(string(t))
		}
	}
	if !sawRoot {
		return nil, fmt.Errorf("xsd: infer: empty document")
	}
	if len(b.stack) != 0 {
		return nil, fmt.Errorf("xsd: infer: unclosed element")
	}
	return b.build()
}

// build turns the accumulated evidence into a Schema.
func (b *inferBuilder) build() (*Schema, error) {
	byPath, order := b.byPath, b.order

	// Fix parent totals: the number of instances of the parent path.
	for path, st := range byPath {
		idx := strings.LastIndexByte(path, '/')
		if idx <= 0 {
			continue
		}
		parentPath := path[:idx]
		if pst, ok := byPath[parentPath]; ok {
			st.parents = pst.occurrences
		}
	}

	// Build elements.
	for _, path := range order {
		st := byPath[path]
		name := path[strings.LastIndexByte(path, '/')+1:]
		e := &Element{Name: name, MinOccurs: 1, MaxOccurs: 1}
		if st.parents > st.present {
			e.MinOccurs = 0
		}
		if st.maxPer > 1 {
			e.MaxOccurs = Unbounded
		}
		switch {
		case st.hasText && st.hasChild:
			e.Content = CMMixed
		case st.hasChild:
			e.Content = CMComplex
			e.Type = DTComplex
		case st.hasText:
			e.Content = CMSimple
		default:
			// No text observed anywhere: could be empty or optional simple.
			e.Content = CMSimple
		}
		if e.Content != CMComplex {
			e.Type = dominantType(st.typeVotes)
		}
		lower := strings.ToLower(name)
		if (strings.HasSuffix(lower, "id") || lower == "key") &&
			st.valueCount > 1 && len(st.values) == st.valueCount {
			e.IsKey = true
		}
		st.elem = e
	}

	// Link the tree, ordering each element's children by their average
	// first-occurrence position among siblings so optional elements land
	// where instances place them (e.g. cdextra before tracks even when
	// the first disc lacks a cdextra).
	var root *Element
	avgPos := func(path string) float64 {
		st := byPath[path]
		if st.posCount == 0 {
			return 0
		}
		return st.posSum / float64(st.posCount)
	}
	childPaths := map[string][]string{}
	for _, path := range order {
		st := byPath[path]
		idx := strings.LastIndexByte(path, '/')
		if idx == 0 {
			root = st.elem
			continue
		}
		childPaths[path[:idx]] = append(childPaths[path[:idx]], path)
	}
	for parentPath, kids := range childPaths {
		sort.SliceStable(kids, func(i, j int) bool {
			return avgPos(kids[i]) < avgPos(kids[j])
		})
		parent := byPath[parentPath]
		for _, kid := range kids {
			parent.elem.Children = append(parent.elem.Children, byPath[kid].elem)
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xsd: inference found no root")
	}
	s := &Schema{Root: root}
	s.index()
	return s, nil
}

func dominantType(votes map[DataType]int) DataType {
	if len(votes) == 0 {
		return DTString
	}
	// Unanimous non-string verdicts win; any disagreement means string.
	var only DataType
	kinds := 0
	for dt, n := range votes {
		if n == 0 {
			continue
		}
		kinds++
		only = dt
	}
	if kinds == 1 {
		return only
	}
	return DTString
}
