// Package heuristics implements the description-selection heuristics of
// Section 4: r-distant ancestors (Heuristic 1), r-distant descendants
// (Heuristic 2) and k-closest descendants (Heuristic 3), the four schema
// conditions ccm / csdt / cme / cse (Conditions 1-4), and the AND / OR /
// h[c] combinators (Combinations 1-3).
//
// A heuristic maps a candidate schema element e0 to the set of schema
// elements whose instances form e0's description σ. Conditions refine a
// heuristic's selection, per Combination 3: σ' = {e ∈ σ | e satisfies c}.
package heuristics

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/xsd"
)

// Heuristic selects description elements for an anchor element.
type Heuristic interface {
	// Select returns schema elements in deterministic order.
	Select(anchor *xsd.Element) []*xsd.Element
	String() string
}

// Condition is a predicate on a selected element, evaluated relative to
// the anchor (Conditions 3 and 4 are relations to e0, not absolute flags).
type Condition interface {
	Satisfied(e, anchor *xsd.Element) bool
	String() string
}

// ----- Heuristics -----

type rAncestors struct{ r int }

// RDistantAncestors implements Heuristic 1: the ancestors a1..ar of e0.
func RDistantAncestors(r int) Heuristic { return rAncestors{r} }

func (h rAncestors) Select(anchor *xsd.Element) []*xsd.Element {
	var out []*xsd.Element
	p := anchor.Parent
	for i := 0; i < h.r && p != nil; i++ {
		out = append(out, p)
		p = p.Parent
	}
	return out
}

func (h rAncestors) String() string { return fmt.Sprintf("h%da", h.r) }

type rDescendants struct{ r int }

// RDistantDescendants implements Heuristic 2: all descendants of e0 whose
// depth below e0 is at most r.
func RDistantDescendants(r int) Heuristic { return rDescendants{r} }

func (h rDescendants) Select(anchor *xsd.Element) []*xsd.Element {
	var out []*xsd.Element
	level := []*xsd.Element{anchor}
	for d := 0; d < h.r; d++ {
		var next []*xsd.Element
		for _, e := range level {
			next = append(next, e.Children...)
		}
		out = append(out, next...)
		level = next
		if len(level) == 0 {
			break
		}
	}
	return out
}

func (h rDescendants) String() string { return fmt.Sprintf("h%dd", h.r) }

type kClosest struct{ k int }

// KClosestDescendants implements Heuristic 3: the first k descendants of
// e0 in breadth-first order.
func KClosestDescendants(k int) Heuristic { return kClosest{k} }

func (h kClosest) Select(anchor *xsd.Element) []*xsd.Element {
	var out []*xsd.Element
	queue := append([]*xsd.Element(nil), anchor.Children...)
	for len(queue) > 0 && len(out) < h.k {
		e := queue[0]
		queue = queue[1:]
		out = append(out, e)
		queue = append(queue, e.Children...)
	}
	return out
}

func (h kClosest) String() string { return fmt.Sprintf("h%dk", h.k) }

// ----- Combinations of heuristics (Combination 1) -----

type andH struct{ a, b Heuristic }

// And returns the AND combination of two heuristics: σ1 ∩ σ2.
func And(a, b Heuristic) Heuristic { return andH{a, b} }

func (h andH) Select(anchor *xsd.Element) []*xsd.Element {
	inB := map[*xsd.Element]bool{}
	for _, e := range h.b.Select(anchor) {
		inB[e] = true
	}
	var out []*xsd.Element
	for _, e := range h.a.Select(anchor) {
		if inB[e] {
			out = append(out, e)
		}
	}
	return out
}

func (h andH) String() string { return fmt.Sprintf("(%s AND %s)", h.a, h.b) }

type orH struct{ a, b Heuristic }

// Or returns the OR combination of two heuristics: σ1 ∪ σ2.
func Or(a, b Heuristic) Heuristic { return orH{a, b} }

func (h orH) Select(anchor *xsd.Element) []*xsd.Element {
	seen := map[*xsd.Element]bool{}
	var out []*xsd.Element
	for _, e := range h.a.Select(anchor) {
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	for _, e := range h.b.Select(anchor) {
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	return out
}

func (h orH) String() string { return fmt.Sprintf("(%s OR %s)", h.a, h.b) }

// ----- Conditions (Section 4.2) -----

type contentModel struct{}

// ContentModel returns ccm: only elements whose content model admits a
// non-empty text node (simple or mixed).
func ContentModel() Condition { return contentModel{} }

func (contentModel) Satisfied(e, _ *xsd.Element) bool { return e.HasText() }
func (contentModel) String() string                   { return "ccm" }

type stringDataType struct{}

// StringDataType returns csdt: only elements of string data type.
func StringDataType() Condition { return stringDataType{} }

func (stringDataType) Satisfied(e, _ *xsd.Element) bool { return e.Type == xsd.DTString }
func (stringDataType) String() string                   { return "csdt" }

type mandatory struct{}

// Mandatory returns cme: on the descendant axis, every step from e0 down
// to the element must be mandatory; on the ancestor axis, e0 must be
// mandatory to the ancestor (every step from the ancestor down to e0 is
// mandatory).
func Mandatory() Condition { return mandatory{} }

func (mandatory) Satisfied(e, anchor *xsd.Element) bool {
	if chain, ok := pathBetween(anchor, e); ok {
		for _, step := range chain {
			if !step.Mandatory() {
				return false
			}
		}
		return true
	}
	if chain, ok := pathBetween(e, anchor); ok { // e is an ancestor of e0
		for _, step := range chain {
			if !step.Mandatory() {
				return false
			}
		}
		return true
	}
	return e.Mandatory()
}

func (mandatory) String() string { return "cme" }

type singleton struct{}

// Singleton returns cse: only elements in a 1:1 relation with e0. On the
// descendant axis every step from e0 down must have maxOccurs = 1; an
// ancestor is always 1:1 with e0 (every element has exactly one parent).
func Singleton() Condition { return singleton{} }

func (singleton) Satisfied(e, anchor *xsd.Element) bool {
	if chain, ok := pathBetween(anchor, e); ok {
		for _, step := range chain {
			if !step.Singleton() {
				return false
			}
		}
		return true
	}
	if _, ok := pathBetween(e, anchor); ok {
		return true // ancestor axis: inherently 1:1
	}
	return e.Singleton()
}

func (singleton) String() string { return "cse" }

// pathBetween returns the chain of elements from (excluding) top down to
// (including) bottom, if top is a proper ancestor of bottom.
func pathBetween(top, bottom *xsd.Element) ([]*xsd.Element, bool) {
	if top == bottom {
		return nil, false
	}
	var chain []*xsd.Element
	for e := bottom; e != nil; e = e.Parent {
		if e == top {
			// reverse into top-down order
			for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
				chain[i], chain[j] = chain[j], chain[i]
			}
			return chain, true
		}
		chain = append(chain, e)
	}
	return nil, false
}

// ----- Combinations of conditions (Combination 2) -----

type condAnd struct{ a, b Condition }

// CondAnd returns c1 ∧c c2.
func CondAnd(a, b Condition) Condition { return condAnd{a, b} }

func (c condAnd) Satisfied(e, anchor *xsd.Element) bool {
	return c.a.Satisfied(e, anchor) && c.b.Satisfied(e, anchor)
}
func (c condAnd) String() string { return fmt.Sprintf("(%s AND %s)", c.a, c.b) }

type condOr struct{ a, b Condition }

// CondOr returns c1 ∨c c2.
func CondOr(a, b Condition) Condition { return condOr{a, b} }

func (c condOr) Satisfied(e, anchor *xsd.Element) bool {
	return c.a.Satisfied(e, anchor) || c.b.Satisfied(e, anchor)
}
func (c condOr) String() string { return fmt.Sprintf("(%s OR %s)", c.a, c.b) }

// ----- Combination of heuristics with conditions (Combination 3) -----

type filtered struct {
	h Heuristic
	c Condition
}

// Filtered returns h[c]: the selection of h restricted to elements that
// satisfy c.
func Filtered(h Heuristic, c Condition) Heuristic { return filtered{h, c} }

func (f filtered) Select(anchor *xsd.Element) []*xsd.Element {
	var out []*xsd.Element
	for _, e := range f.h.Select(anchor) {
		if f.c.Satisfied(e, anchor) {
			out = append(out, e)
		}
	}
	return out
}

func (f filtered) String() string { return fmt.Sprintf("%s[%s]", f.h, f.c) }

// ----- Table 4: the experiment condition combinations -----

// ExperimentCount is the number of condition combinations in Table 4.
const ExperimentCount = 8

// Experiment wraps the base heuristic h with the conditions of experiment
// n (1-based), exactly as Table 4 lists them:
//
//	exp1 h            exp5 h[csdt ∧ cme]
//	exp2 h[csdt]      exp6 h[csdt ∧ cse]
//	exp3 h[cme]       exp7 h[cme ∧ cse]
//	exp4 h[cse]       exp8 h[csdt ∧ cse ∧ cme]
func Experiment(n int, h Heuristic) (Heuristic, error) {
	switch n {
	case 1:
		return h, nil
	case 2:
		return Filtered(h, StringDataType()), nil
	case 3:
		return Filtered(h, Mandatory()), nil
	case 4:
		return Filtered(h, Singleton()), nil
	case 5:
		return Filtered(h, CondAnd(StringDataType(), Mandatory())), nil
	case 6:
		return Filtered(h, CondAnd(StringDataType(), Singleton())), nil
	case 7:
		return Filtered(h, CondAnd(Mandatory(), Singleton())), nil
	case 8:
		return Filtered(h, CondAnd(StringDataType(), CondAnd(Singleton(), Mandatory()))), nil
	default:
		return nil, fmt.Errorf("heuristics: experiment %d out of range 1..%d", n, ExperimentCount)
	}
}

// ExperimentName returns the Table 4 label of experiment n, e.g.
// "h[csdt ∧ cme]".
func ExperimentName(n int) string {
	names := []string{"", "h", "h[csdt]", "h[cme]", "h[cse]",
		"h[csdt ∧ cme]", "h[csdt ∧ cse]", "h[cme ∧ cse]", "h[csdt ∧ cse ∧ cme]"}
	if n < 1 || n >= len(names) {
		return fmt.Sprintf("exp%d", n)
	}
	return names[n]
}

// ----- Relative paths -----

// RelPath renders the location of e relative to the anchor in the paper's
// σ notation: "./title" for descendants, "../.." style for ancestors, and
// the absolute path for unrelated elements.
func RelPath(anchor, e *xsd.Element) string {
	if e == anchor {
		return "."
	}
	if chain, ok := pathBetween(anchor, e); ok {
		parts := make([]string, len(chain))
		for i, step := range chain {
			parts[i] = step.Name
		}
		return "./" + strings.Join(parts, "/")
	}
	if chain, ok := pathBetween(e, anchor); ok {
		ups := make([]string, len(chain))
		for i := range ups {
			ups[i] = ".."
		}
		return strings.Join(ups, "/")
	}
	return e.Path
}

// Describe renders a selection as sorted relative paths, handy for tests
// and the Table 5 / Table 6 output.
func Describe(anchor *xsd.Element, sel []*xsd.Element) []string {
	out := make([]string, len(sel))
	for i, e := range sel {
		out[i] = RelPath(anchor, e)
	}
	sort.Strings(out)
	return out
}
