package heuristics

import (
	"reflect"
	"testing"

	"repro/internal/xsd"
)

// cdSchema builds the Dataset 1 / Table 5 schema.
const cdXSD = `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="freedb">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="disc" minOccurs="0" maxOccurs="unbounded">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="did" type="xs:ID"/>
              <xs:element name="artist" type="xs:string" maxOccurs="unbounded"/>
              <xs:element name="title" type="xs:string" maxOccurs="unbounded"/>
              <xs:element name="genre" type="xs:string" minOccurs="0"/>
              <xs:element name="year" type="xs:gYear"/>
              <xs:element name="cdextra" type="xs:string" minOccurs="0" maxOccurs="unbounded"/>
              <xs:element name="tracks">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="title" type="xs:string" maxOccurs="unbounded"/>
                  </xs:sequence>
                </xs:complexType>
              </xs:element>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>`

func discAnchor(t *testing.T) (*xsd.Schema, *xsd.Element) {
	t.Helper()
	s, err := xsd.ParseString(cdXSD)
	if err != nil {
		t.Fatal(err)
	}
	return s, s.ElementAt("/freedb/disc")
}

func paths(anchor *xsd.Element, sel []*xsd.Element) []string {
	out := make([]string, len(sel))
	for i, e := range sel {
		out[i] = RelPath(anchor, e)
	}
	return out
}

func TestRDistantDescendants(t *testing.T) {
	_, disc := discAnchor(t)
	got := paths(disc, RDistantDescendants(1).Select(disc))
	want := []string{"./did", "./artist", "./title", "./genre", "./year", "./cdextra", "./tracks"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("r=1: %v", got)
	}
	got2 := paths(disc, RDistantDescendants(2).Select(disc))
	want2 := append(want, "./tracks/title")
	if !reflect.DeepEqual(got2, want2) {
		t.Errorf("r=2: %v", got2)
	}
	// r beyond depth adds nothing
	got3 := paths(disc, RDistantDescendants(9).Select(disc))
	if !reflect.DeepEqual(got3, want2) {
		t.Errorf("r=9: %v", got3)
	}
}

func TestKClosestDescendantsMatchesTable5Order(t *testing.T) {
	// Table 5 numbers the elements 1..8 in BFS order: did, artist, title,
	// genre, year, cdextra, tracks, tracks/title.
	_, disc := discAnchor(t)
	order := []string{"./did", "./artist", "./title", "./genre", "./year", "./cdextra", "./tracks", "./tracks/title"}
	for k := 1; k <= 8; k++ {
		got := paths(disc, KClosestDescendants(k).Select(disc))
		if !reflect.DeepEqual(got, order[:k]) {
			t.Errorf("k=%d: %v, want %v", k, got, order[:k])
		}
	}
	// k=7 equals r-distant r=1, k=8 equals r=2 (paper Sec. 6.2).
	if !reflect.DeepEqual(
		paths(disc, KClosestDescendants(7).Select(disc)),
		paths(disc, RDistantDescendants(1).Select(disc))) {
		t.Error("k=7 should equal r=1")
	}
	if !reflect.DeepEqual(
		paths(disc, KClosestDescendants(8).Select(disc)),
		paths(disc, RDistantDescendants(2).Select(disc))) {
		t.Error("k=8 should equal r=2")
	}
}

func TestRDistantAncestors(t *testing.T) {
	s, _ := discAnchor(t)
	title := s.ElementAt("/freedb/disc/tracks/title")
	got := paths(title, RDistantAncestors(2).Select(title))
	if !reflect.DeepEqual(got, []string{"..", "../.."}) {
		t.Errorf("ancestors = %v", got)
	}
	got = paths(title, RDistantAncestors(9).Select(title))
	if !reflect.DeepEqual(got, []string{"..", "../..", "../../.."}) {
		t.Errorf("all ancestors = %v", got)
	}
}

func TestConditions(t *testing.T) {
	s, disc := discAnchor(t)
	el := func(p string) *xsd.Element { return s.ElementAt("/freedb/disc" + p) }

	cases := []struct {
		cond Condition
		elem *xsd.Element
		want bool
	}{
		{ContentModel(), el("/did"), true},
		{ContentModel(), el("/tracks"), false}, // complex, no text
		{StringDataType(), el("/did"), true},
		{StringDataType(), el("/year"), false}, // date
		{Mandatory(), el("/did"), true},
		{Mandatory(), el("/genre"), false},       // minOccurs=0
		{Mandatory(), el("/tracks/title"), true}, // tracks ME and title ME
		{Singleton(), el("/did"), true},
		{Singleton(), el("/artist"), false}, // unbounded
		{Singleton(), el("/tracks"), true},
		{Singleton(), el("/tracks/title"), false}, // title unbounded below tracks
	}
	for _, tc := range cases {
		if got := tc.cond.Satisfied(tc.elem, disc); got != tc.want {
			t.Errorf("%s(%s) = %v, want %v", tc.cond, tc.elem.Path, got, tc.want)
		}
	}
}

func TestConditionsOnAncestorAxis(t *testing.T) {
	s, _ := discAnchor(t)
	trackTitle := s.ElementAt("/freedb/disc/tracks/title")
	disc := s.ElementAt("/freedb/disc")
	tracks := s.ElementAt("/freedb/disc/tracks")
	// tracks/title is mandatory within tracks, and tracks within disc, so
	// from the anchor tracks/title both ancestors satisfy cme.
	if !Mandatory().Satisfied(tracks, trackTitle) {
		t.Error("tracks should satisfy cme from tracks/title")
	}
	if !Mandatory().Satisfied(disc, trackTitle) {
		t.Error("disc should satisfy cme from tracks/title")
	}
	// ancestors are always singleton relative to the anchor
	if !Singleton().Satisfied(disc, trackTitle) {
		t.Error("ancestor should satisfy cse")
	}
	// genre is optional: from genre's perspective, its parent disc fails
	// cme because genre is not mandatory to disc.
	genre := s.ElementAt("/freedb/disc/genre")
	if Mandatory().Satisfied(disc, genre) {
		t.Error("disc should fail cme from optional genre")
	}
}

func TestCondCombinators(t *testing.T) {
	s, disc := discAnchor(t)
	did := s.ElementAt("/freedb/disc/did")
	year := s.ElementAt("/freedb/disc/year")
	and := CondAnd(StringDataType(), Mandatory())
	if !and.Satisfied(did, disc) {
		t.Error("did should satisfy csdt∧cme")
	}
	if and.Satisfied(year, disc) {
		t.Error("year should fail csdt∧cme")
	}
	or := CondOr(StringDataType(), Mandatory())
	if !or.Satisfied(year, disc) {
		t.Error("year should satisfy csdt∨cme (mandatory)")
	}
}

func TestHeuristicCombinators(t *testing.T) {
	_, disc := discAnchor(t)
	h1 := KClosestDescendants(3) // did, artist, title
	h2 := RDistantDescendants(1) // all 7 children
	inter := paths(disc, And(h1, h2).Select(disc))
	if !reflect.DeepEqual(inter, []string{"./did", "./artist", "./title"}) {
		t.Errorf("AND = %v", inter)
	}
	union := paths(disc, Or(h1, h2).Select(disc))
	if len(union) != 7 {
		t.Errorf("OR = %v", union)
	}
	// union deduplicates
	dup := paths(disc, Or(h1, h1).Select(disc))
	if !reflect.DeepEqual(dup, []string{"./did", "./artist", "./title"}) {
		t.Errorf("OR self = %v", dup)
	}
}

func TestFilteredSelection(t *testing.T) {
	_, disc := discAnchor(t)
	// All direct children of string type with text: Conditions csdt ∧ ccm.
	h := Filtered(RDistantDescendants(1), CondAnd(StringDataType(), ContentModel()))
	got := paths(disc, h.Select(disc))
	want := []string{"./did", "./artist", "./title", "./genre", "./cdextra"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("filtered = %v", got)
	}
}

// TestExperimentSelections verifies the per-experiment element sets on
// Dataset 1's schema that explain the Fig. 5 curves (Sec. 6.2).
func TestExperimentSelections(t *testing.T) {
	_, disc := discAnchor(t)
	base := KClosestDescendants(8) // all elements of Table 5
	want := map[int][]string{
		1: {"./did", "./artist", "./title", "./genre", "./year", "./cdextra", "./tracks", "./tracks/title"},
		2: {"./did", "./artist", "./title", "./genre", "./cdextra", "./tracks/title"}, // strings only
		3: {"./did", "./artist", "./title", "./year", "./tracks", "./tracks/title"},   // mandatory only
		4: {"./did", "./genre", "./year", "./tracks"},                                 // singletons only
		5: {"./did", "./artist", "./title", "./tracks/title"},                         // string ∧ mandatory
		6: {"./did", "./genre", "./cdextra"},                                          // string ∧ singleton... cdextra not SE!
		7: {"./did", "./year", "./tracks"},                                            // mandatory ∧ singleton
		8: {"./did"},                                                                  // all three
	}
	// fix exp6: cdextra has maxOccurs unbounded, so it is NOT a singleton.
	want[6] = []string{"./did", "./genre"}
	for n := 1; n <= ExperimentCount; n++ {
		h, err := Experiment(n, base)
		if err != nil {
			t.Fatal(err)
		}
		got := paths(disc, h.Select(disc))
		if !reflect.DeepEqual(got, want[n]) {
			t.Errorf("exp%d = %v, want %v", n, got, want[n])
		}
	}
	if _, err := Experiment(0, base); err == nil {
		t.Error("experiment 0 should error")
	}
	if _, err := Experiment(9, base); err == nil {
		t.Error("experiment 9 should error")
	}
}

func TestExperimentNames(t *testing.T) {
	if got := ExperimentName(1); got != "h" {
		t.Errorf("name 1 = %q", got)
	}
	if got := ExperimentName(8); got != "h[csdt ∧ cse ∧ cme]" {
		t.Errorf("name 8 = %q", got)
	}
	if got := ExperimentName(42); got != "exp42" {
		t.Errorf("name 42 = %q", got)
	}
}

func TestRelPathUnrelated(t *testing.T) {
	s, _ := discAnchor(t)
	did := s.ElementAt("/freedb/disc/did")
	year := s.ElementAt("/freedb/disc/year")
	// siblings are neither ancestors nor descendants: absolute path
	if got := RelPath(did, year); got != "/freedb/disc/year" {
		t.Errorf("unrelated RelPath = %q", got)
	}
	if got := RelPath(did, did); got != "." {
		t.Errorf("self RelPath = %q", got)
	}
}

func TestDescribeSorts(t *testing.T) {
	_, disc := discAnchor(t)
	sel := RDistantDescendants(1).Select(disc)
	desc := Describe(disc, sel)
	for i := 1; i < len(desc); i++ {
		if desc[i-1] > desc[i] {
			t.Errorf("Describe not sorted: %v", desc)
		}
	}
}
