package heuristics

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec builds a heuristic from a compact textual specification, used
// by the CLI and examples:
//
//	kd:6                 k-closest descendants, k = 6
//	rd:2                 r-distant descendants, r = 2
//	ra:1                 r-distant ancestors, r = 1
//	rd:1+ra:1            OR-combination of two heuristics
//	kd:6[csdt,cme]       heuristic refined by conditions (ANDed)
//	exp5:kd:6            Table 4 experiment 5 over the base heuristic
//
// Conditions: ccm (content model), csdt (string data type), cme
// (mandatory), cse (singleton).
func ParseSpec(spec string) (Heuristic, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("heuristics: empty spec")
	}
	parts := strings.Split(spec, "+")
	var combined Heuristic
	for _, part := range parts {
		h, err := parseOne(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if combined == nil {
			combined = h
		} else {
			combined = Or(combined, h)
		}
	}
	return combined, nil
}

func parseOne(part string) (Heuristic, error) {
	// exp prefix?
	if strings.HasPrefix(part, "exp") {
		rest := part[3:]
		colon := strings.IndexByte(rest, ':')
		if colon < 0 {
			return nil, fmt.Errorf("heuristics: spec %q: expN needs a base heuristic, e.g. exp5:kd:6", part)
		}
		n, err := strconv.Atoi(rest[:colon])
		if err != nil {
			return nil, fmt.Errorf("heuristics: spec %q: bad experiment number", part)
		}
		base, err := parseOne(rest[colon+1:])
		if err != nil {
			return nil, err
		}
		return Experiment(n, base)
	}

	// conditions suffix?
	var conds []Condition
	if open := strings.IndexByte(part, '['); open >= 0 {
		if !strings.HasSuffix(part, "]") {
			return nil, fmt.Errorf("heuristics: spec %q: unterminated condition list", part)
		}
		list := part[open+1 : len(part)-1]
		part = part[:open]
		for _, name := range strings.Split(list, ",") {
			c, err := parseCondition(strings.TrimSpace(name))
			if err != nil {
				return nil, err
			}
			conds = append(conds, c)
		}
	}

	fields := strings.Split(part, ":")
	if len(fields) != 2 {
		return nil, fmt.Errorf("heuristics: spec %q: want kind:N", part)
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 1 {
		return nil, fmt.Errorf("heuristics: spec %q: bad parameter %q", part, fields[1])
	}
	var h Heuristic
	switch fields[0] {
	case "kd":
		h = KClosestDescendants(n)
	case "rd":
		h = RDistantDescendants(n)
	case "ra":
		h = RDistantAncestors(n)
	default:
		return nil, fmt.Errorf("heuristics: spec %q: unknown kind %q (want kd, rd, ra)", part, fields[0])
	}
	for _, c := range conds {
		h = Filtered(h, c)
	}
	return h, nil
}

func parseCondition(name string) (Condition, error) {
	switch name {
	case "ccm":
		return ContentModel(), nil
	case "csdt":
		return StringDataType(), nil
	case "cme":
		return Mandatory(), nil
	case "cse":
		return Singleton(), nil
	default:
		return nil, fmt.Errorf("heuristics: unknown condition %q (want ccm, csdt, cme, cse)", name)
	}
}
