package heuristics

import (
	"reflect"
	"testing"

	"repro/internal/xsd"
)

func specAnchor(t *testing.T) *xsd.Element {
	t.Helper()
	s, err := xsd.ParseString(cdXSD)
	if err != nil {
		t.Fatal(err)
	}
	return s.ElementAt("/freedb/disc")
}

func TestParseSpecBasics(t *testing.T) {
	disc := specAnchor(t)
	cases := []struct {
		spec string
		want []string
	}{
		{"kd:3", []string{"./did", "./artist", "./title"}},
		{"rd:1", []string{"./did", "./artist", "./title", "./genre", "./year", "./cdextra", "./tracks"}},
		{"kd:3[csdt]", []string{"./did", "./artist", "./title"}},
		{"kd:7[cse,cme]", []string{"./did", "./year", "./tracks"}},
		{"exp8:kd:8", []string{"./did"}},
		{"kd:1+kd:3", []string{"./did", "./artist", "./title"}},
	}
	for _, tc := range cases {
		h, err := ParseSpec(tc.spec)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.spec, err)
			continue
		}
		got := paths(disc, h.Select(disc))
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("spec %q selected %v, want %v", tc.spec, got, tc.want)
		}
	}
}

func TestParseSpecAncestors(t *testing.T) {
	s, _ := xsd.ParseString(cdXSD)
	title := s.ElementAt("/freedb/disc/tracks/title")
	h, err := ParseSpec("ra:2")
	if err != nil {
		t.Fatal(err)
	}
	got := paths(title, h.Select(title))
	if !reflect.DeepEqual(got, []string{"..", "../.."}) {
		t.Errorf("ra:2 = %v", got)
	}
	// combined descendant + ancestor selection, the paper's
	// hra[cma] ∨h hrd[...] style. disc has minOccurs=0, so its parent
	// fails cme (disc is not mandatory to freedb) and only the
	// descendant half contributes.
	h2, err := ParseSpec("ra:1[cme]+rd:1[csdt,ccm]")
	if err != nil {
		t.Fatal(err)
	}
	disc := s.ElementAt("/freedb/disc")
	got2 := paths(disc, h2.Select(disc))
	want2 := []string{"./did", "./artist", "./title", "./genre", "./cdextra"}
	if !reflect.DeepEqual(got2, want2) {
		t.Errorf("combined spec = %v, want %v", got2, want2)
	}
	// from tracks/title the ancestor chain is fully mandatory, so the
	// ancestor half does contribute.
	got3 := paths(title, h2.Select(title))
	if len(got3) == 0 || got3[0] != ".." {
		t.Errorf("combined spec from tracks/title = %v", got3)
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",
		"zz:3",
		"kd",
		"kd:0",
		"kd:x",
		"kd:3[nope]",
		"kd:3[csdt",
		"exp9:kd:3",
		"expX:kd:3",
		"exp5",
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", spec)
		}
	}
}
