package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/od"
	"repro/internal/xmltree"
)

// maxUpdateBody bounds a POST /v1/updates body; batches beyond it are
// split by the client, not buffered by the daemon.
const maxUpdateBody = 64 << 20

// Handler builds the daemon's HTTP surface over the service.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/duplicates/{id}", s.handleDuplicates)
	mux.HandleFunc("GET /v1/clusters", s.handleClusters)
	mux.HandleFunc("GET /v1/similar", s.handleSimilar)
	mux.HandleFunc("POST /v1/updates", s.handleUpdates)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(body)
}

func writeError(w http.ResponseWriter, err *Error) {
	if err.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(err.RetryAfter))
	}
	writeJSON(w, err.Status, err)
}

// handleDuplicates answers from the published view only: no store
// access, no locks, safe against concurrent updates by construction.
func (s *Service) handleDuplicates(w http.ResponseWriter, r *http.Request) {
	s.qDuplicates.Add(1)
	v := s.view.Load()
	id64, err := strconv.ParseInt(r.PathValue("id"), 10, 32)
	if err != nil {
		writeError(w, &Error{Status: 400, Code: CodeBadRequest, Message: fmt.Sprintf("bad candidate id %q", r.PathValue("id"))})
		return
	}
	id := int32(id64)
	if id < 0 || int(id) >= len(v.res.Candidates) {
		writeError(w, &Error{Status: 404, Code: CodeNotFound, Message: fmt.Sprintf("no candidate %d (corpus has %d)", id, len(v.res.Candidates))})
		return
	}
	writeJSON(w, 200, &DuplicatesResponse{
		Object:  v.ref(id),
		Live:    !v.removed[id],
		Cluster: v.cluster[id],
		Pairs:   v.pairsOf[id],
	})
}

func (s *Service) handleClusters(w http.ResponseWriter, r *http.Request) {
	s.qClusters.Add(1)
	v := s.view.Load()
	resp := &ClustersResponse{
		Type:     v.res.Type,
		Epoch:    v.epoch,
		Live:     v.live,
		Pairs:    len(v.res.Pairs),
		Clusters: make([]ClusterInfo, len(v.res.Clusters)),
	}
	for ci, members := range v.res.Clusters {
		info := ClusterInfo{OID: ci, Members: make([]ObjectRef, len(members))}
		for mi, id := range members {
			info.Members[mi] = v.ref(id)
		}
		resp.Clusters[ci] = info
	}
	writeJSON(w, 200, resp)
}

// handleSimilar queries the live value index. The store is shared with
// the applier's Update, so this holds the read lock; a poisoned
// federation member panics with *od.PartitionUnavailableError, which
// maps to the same typed 503 the update path returns.
func (s *Service) handleSimilar(w http.ResponseWriter, r *http.Request) {
	s.qSimilar.Add(1)
	typ := r.URL.Query().Get("type")
	value := r.URL.Query().Get("value")
	if typ == "" || value == "" {
		writeError(w, &Error{Status: 400, Code: CodeBadRequest, Message: "both type= and value= are required"})
		return
	}
	resp, serr := s.similar(typ, value)
	if serr != nil {
		writeError(w, serr)
		return
	}
	writeJSON(w, 200, resp)
}

func (s *Service) similar(typ, value string) (resp *SimilarResponse, serr *Error) {
	s.storeMu.RLock()
	defer s.storeMu.RUnlock()
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(*od.PartitionUnavailableError)
			if !ok {
				panic(r)
			}
			serr = &Error{Status: 503, Code: CodePartitionUnavailable, Message: pe.Error(), Partition: pe.Partition, RetryAfter: 5}
		}
	}()
	v := s.view.Load()
	resp = &SimilarResponse{Type: typ, Value: value}
	for _, m := range v.res.Store.SimilarValues(od.Tuple{Type: typ, Value: value}) {
		match := SimilarMatch{Value: m.Value, Dist: m.Dist, Objects: make([]ObjectRef, 0, len(m.Objects))}
		for _, id := range m.Objects {
			if int(id) < len(v.res.Candidates) {
				match.Objects = append(match.Objects, v.ref(id))
			} else {
				// The store can be a batch ahead of the view for the
				// instant before publish; surface the bare ID rather
				// than invent a path.
				match.Objects = append(match.Objects, ObjectRef{ID: id, Source: -1})
			}
		}
		resp.Matches = append(resp.Matches, match)
	}
	return resp, nil
}

// handleUpdates parses and validates the batch inline (bad XML is the
// submitter's 400, not a poisoned queue entry), then blocks on Submit
// until the batch is applied and persisted — the 200 is the ack.
func (s *Service) handleUpdates(w http.ResponseWriter, r *http.Request) {
	var req UpdateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUpdateBody))
	if err := dec.Decode(&req); err != nil {
		writeError(w, &Error{Status: 400, Code: CodeBadRequest, Message: fmt.Sprintf("bad update request: %v", err)})
		return
	}
	var add []core.SourceInput
	for i, doc := range req.Add {
		name := doc.Name
		if name == "" {
			name = fmt.Sprintf("posted-doc[%d]", i)
		}
		tree, err := xmltree.Parse(strings.NewReader(doc.XML))
		if err != nil {
			writeError(w, &Error{Status: 400, Code: CodeBadRequest, Message: fmt.Sprintf("add %q: %v", name, err)})
			return
		}
		add = append(add, core.Source{Name: name, Doc: tree, Schema: s.cfg.Schema})
	}
	resp, err := s.Submit(r.Context(), add, req.Remove)
	if err != nil {
		var serr *Error
		if apiErr, ok := err.(*Error); ok {
			serr = apiErr
		} else {
			// Context cancellation: the batch may still apply; tell the
			// client its ack was lost, not its batch.
			serr = &Error{Status: 499, Code: CodeUpdateFailed, Message: fmt.Sprintf("ack abandoned: %v (the batch may still apply)", err)}
		}
		writeError(w, serr)
		return
	}
	writeJSON(w, 200, resp)
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	v := s.view.Load()
	h := &Health{Status: s.status(), Type: v.res.Type, Epoch: v.epoch}
	s.storeMu.RLock()
	if fed, ok := v.res.Store.(*od.PartitionedStore); ok {
		h.ReplicasDown = fed.DownMembers()
	}
	s.storeMu.RUnlock()
	// Draining maps to 503 so load balancers stop routing here; a
	// degraded daemon still serves reads and stays 200.
	status := 200
	if h.Status == "draining" {
		status = 503
	}
	writeJSON(w, status, h)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	v := s.view.Load()
	m := &Metrics{
		Type:       v.res.Type,
		Status:     s.status(),
		Epoch:      v.epoch,
		UptimeSec:  time.Since(s.start).Seconds(),
		Candidates: len(v.res.Candidates),
		Live:       v.live,
		Pairs:      len(v.res.Pairs),
		Possible:   len(v.res.PossiblePairs),
		Clusters:   len(v.res.Clusters),
		LastRun: RunStats{
			Candidates:    v.res.Stats.Candidates,
			Pruned:        v.res.Stats.Pruned,
			Compared:      v.res.Stats.Compared,
			Patched:       v.res.Stats.Patched,
			PairsDetected: v.res.Stats.PairsDetected,
			TraceSource:   v.res.Stats.TraceSource,
			ElapsedMS:     float64(v.res.Stats.Elapsed) / float64(time.Millisecond),
		},
		Queries: QueryCounters{
			Duplicates: s.qDuplicates.Load(),
			Clusters:   s.qClusters.Load(),
			Similar:    s.qSimilar.Load(),
		},
		Updates: UpdateCounters{
			Accepted:  s.updAccepted.Load(),
			Applied:   s.updApplied.Load(),
			Rejected:  s.updRejected.Load(),
			Batches:   s.updBatches.Load(),
			Coalesced: s.updCoalesced.Load(),
		},
		DurableAcks: s.cfg.PipelinePersists || s.cfg.Persist != nil,
	}
	for _, st := range v.res.Stages {
		m.Stages = append(m.Stages, StageMetric{
			Name:      st.Name,
			Items:     st.Items,
			ElapsedMS: float64(st.Elapsed) / float64(time.Millisecond),
		})
	}
	s.storeMu.RLock()
	if cs, ok := v.res.Store.(interface {
		CacheStats() map[string]od.CacheStats
	}); ok {
		stats := cs.CacheStats()
		if len(stats) > 0 {
			m.Cache = make(map[string]CacheCounters, len(stats))
			for name, c := range stats {
				m.Cache[name] = CacheCounters{Hits: c.Hits, Misses: c.Misses, Evictions: c.Evictions, Entries: c.Entries, Capacity: c.Capacity}
			}
		}
	}
	if fed, ok := v.res.Store.(*od.PartitionedStore); ok {
		rs := fed.RoutingStats()
		m.Routing = &RoutingCounters{SimFanouts: rs.SimFanouts, MemberQueries: rs.MemberQueries, MemberSkips: rs.MemberSkips, ExactSkips: rs.ExactSkips}
		if ws := fed.MemberWireStats(); len(ws) > 0 {
			m.Wire = make(map[string]WireCounters, len(ws))
			for member, wsm := range ws {
				m.Wire[member] = WireCounters{RoundTrips: wsm.RoundTrips, FramesOut: wsm.FramesOut, FramesIn: wsm.FramesIn, BytesOut: wsm.BytesOut, BytesIn: wsm.BytesIn}
			}
		}
		for _, mh := range fed.ReplicaHealth() {
			m.Replicas = append(m.Replicas, ReplicaCounters{
				Partition: mh.Partition,
				Members:   mh.Members,
				Down:      mh.Down,
				Errors:    mh.Errors,
			})
		}
	}
	s.storeMu.RUnlock()
	writeJSON(w, 200, m)
}
