package api_test

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/core"
)

// detectFed builds a small federation result to persist.
func detectFed(t *testing.T, fix *fixture) *core.Result {
	t.Helper()
	cfg := fix.cfg
	cfg.NewStore = distStore(2)
	cfg.Incremental = true
	det, err := core.NewDetector(fix.mapping, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.DetectInputs("DISC", fix.input(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func genDirs(t *testing.T, root string) []string {
	t.Helper()
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	var gens []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "gen-") {
			gens = append(gens, e.Name())
		}
	}
	sort.Strings(gens)
	return gens
}

// TestFederationDirGenerations pins the generation protocol: Persist
// commits monotonically numbered generations via the CURRENT pointer,
// Open serves the committed one and sweeps everything else, and a
// committed root refuses to be re-created.
func TestFederationDirGenerations(t *testing.T) {
	fix := newFixture(t)
	root := filepath.Join(t.TempDir(), "fed")

	fdir, err := api.CreateFederationDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if fdir.Dir() != "" {
		t.Errorf("Dir() = %q before the first Persist", fdir.Dir())
	}
	res := detectFed(t, fix)
	if err := fdir.Persist(res); err != nil {
		t.Fatal(err)
	}
	if got := fdir.Dir(); got != filepath.Join(root, "gen-000001") {
		t.Errorf("Dir() after first Persist = %q", got)
	}
	if err := fdir.Persist(res); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-save: an uncommitted generation directory.
	partial := filepath.Join(root, "gen-000009")
	if err := os.MkdirAll(partial, 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(partial, "junk"), []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Open serves gen-2 and sweeps both the superseded gen-1 and the
	// uncommitted gen-9.
	fdir2, fed, err := api.OpenFederationDir(root)
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	if fdir2.Dir() != filepath.Join(root, "gen-000002") {
		t.Errorf("reopened Dir() = %q, want gen-000002", fdir2.Dir())
	}
	if gens := genDirs(t, root); len(gens) != 1 || gens[0] != "gen-000002" {
		t.Errorf("generations after Open = %v, want only gen-000002", gens)
	}
	adopted, err := core.Adopt("DISC", fed)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonLive(adopted), canonLive(res); got != want {
		t.Errorf("reopened corpus diverges\n got: %s\nwant: %s", got, want)
	}

	// A committed root cannot be clobbered by a fresh-build boot.
	if _, err := api.CreateFederationDir(root); err == nil {
		t.Error("CreateFederationDir on a committed root did not fail")
	}

	// The next Persist from the reopened root continues the chain at
	// gen-3 — even though its members are DiskStores living in gen-2.
	if err := fdir2.Persist(adopted); err != nil {
		t.Fatal(err)
	}
	if fdir2.Dir() != filepath.Join(root, "gen-000003") {
		t.Errorf("Dir() after reopened Persist = %q, want gen-000003", fdir2.Dir())
	}
}

// TestFederationDirRejects pins the error surface: a missing root, a
// corrupt CURRENT pointer, and persisting a non-federation result.
func TestFederationDirRejects(t *testing.T) {
	if _, _, err := api.OpenFederationDir(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Error("opening an absent root did not fail")
	}

	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "CURRENT"), []byte("not-a-gen\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := api.OpenFederationDir(root); err == nil || !strings.Contains(err.Error(), "corrupt CURRENT") {
		t.Errorf("corrupt CURRENT err = %v", err)
	}

	fix := newFixture(t)
	cfg := fix.cfg
	cfg.Incremental = true
	det, err := core.NewDetector(fix.mapping, cfg)
	if err != nil {
		t.Fatal(err)
	}
	memRes, err := det.DetectInputs("DISC", fix.input(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	fdir, err := api.CreateFederationDir(filepath.Join(t.TempDir(), "fed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := fdir.Persist(memRes); err == nil || !strings.Contains(err.Error(), "not a federation") {
		t.Errorf("persisting a mem-store result err = %v", err)
	}
	if fdir.Dir() != "" {
		t.Errorf("failed Persist advanced the committed generation to %q", fdir.Dir())
	}
}
