// Package client is the thin HTTP client of the dogmatix daemon's
// service API (internal/api). It speaks the same wire types the server
// encodes and turns non-2xx responses back into *api.Error, so callers
// branch on api.Code* constants instead of parsing bodies.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/api"
)

// Client talks to one daemon.
type Client struct {
	base string
	// HTTP is the underlying client; replace it to set timeouts or a
	// custom transport.
	HTTP *http.Client
}

// New builds a client for a daemon at base (e.g. "http://127.0.0.1:7497").
func New(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), HTTP: &http.Client{}}
}

// Health fetches /healthz. A draining daemon answers 503 with a valid
// body; that is returned as (health, nil) — the status field carries
// the state.
func (c *Client) Health(ctx context.Context) (*api.Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h api.Health
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h); err != nil {
		return nil, fmt.Errorf("healthz: %w", err)
	}
	return &h, nil
}

// Duplicates fetches the pairs and cluster of one candidate.
func (c *Client) Duplicates(ctx context.Context, id int32) (*api.DuplicatesResponse, error) {
	var out api.DuplicatesResponse
	if err := c.do(ctx, http.MethodGet, "/v1/duplicates/"+strconv.FormatInt(int64(id), 10), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Clusters fetches the full clustering of the served corpus.
func (c *Client) Clusters(ctx context.Context) (*api.ClustersResponse, error) {
	var out api.ClustersResponse
	if err := c.do(ctx, http.MethodGet, "/v1/clusters", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Similar queries the live value index for values similar to value
// under the given real-world type.
func (c *Client) Similar(ctx context.Context, typ, value string) (*api.SimilarResponse, error) {
	q := url.Values{"type": {typ}, "value": {value}}
	var out api.SimilarResponse
	if err := c.do(ctx, http.MethodGet, "/v1/similar?"+q.Encode(), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Submit posts one update batch and blocks until the daemon applied
// (and, when it persists, persisted) it. A 503 *api.Error with
// RetryAfter set means congestion or drain — retry later; a
// CodePartitionUnavailable error means the batch was NOT applied and
// the daemon refuses further mutations.
func (c *Client) Submit(ctx context.Context, req *api.UpdateRequest) (*api.UpdateResponse, error) {
	var out api.UpdateResponse
	if err := c.do(ctx, http.MethodPost, "/v1/updates", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the daemon's metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (*api.Metrics, error) {
	var out api.Metrics
	if err := c.do(ctx, http.MethodGet, "/metrics", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		apiErr := &api.Error{Status: resp.StatusCode}
		if err := json.Unmarshal(payload, apiErr); err != nil || apiErr.Message == "" {
			apiErr.Message = fmt.Sprintf("%s %s: %s", method, path, strings.TrimSpace(string(payload)))
		}
		if apiErr.RetryAfter == 0 {
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
				apiErr.RetryAfter = ra
			}
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(payload, out); err != nil {
		return fmt.Errorf("%s %s: bad response body: %w", method, path, err)
	}
	return nil
}
