package api_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/api"
	"repro/internal/api/client"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/heuristics"
	"repro/internal/od"
	"repro/internal/od/odrpc"
	"repro/internal/xmltree"
)

// fixture is the CD corpus every daemon test serves: an initial load
// and two update batches with cross-source duplicates, plus the
// removal specs the second batch carries (the CLI's SOURCE:path
// syntax, resolved by the daemon at apply time).
type fixture struct {
	mapping *core.Mapping
	cfg     core.Config // base config; tests add store/persistence
	docs    [3][]byte   // initial, batch1, batch2
	removes []string    // removal specs applied with batch2
	artist  string      // a live indexed value for /v1/similar
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	mapping := core.NewMapping()
	for typ, paths := range datagen.FreeDBMappingPaths() {
		mapping.MustAdd(typ, paths...)
	}
	cds := datagen.FreeDB(40, 2030)
	c0 := append(append([]datagen.CD(nil), cds[:20]...), cds[2], cds[7])
	c1 := append(append([]datagen.CD(nil), cds[20:30]...), cds[5], cds[11])
	c2 := append(append([]datagen.CD(nil), cds[30:40]...), cds[22], cds[1])
	return &fixture{
		mapping: mapping,
		cfg: core.Config{
			Heuristic:  heuristics.KClosestDescendants(6),
			ThetaTuple: 0.15,
			ThetaCand:  0.55,
			UseFilter:  true,
		},
		docs: [3][]byte{
			xmlBytes(t, datagen.FreeDBToXML(c0)),
			xmlBytes(t, datagen.FreeDBToXML(c1)),
			xmlBytes(t, datagen.FreeDBToXML(c2)),
		},
		// Last disc of the initial source and third disc of batch1.
		removes: []string{
			fmt.Sprintf("0:/freedb/disc[%d]", len(c0)),
			"1:/freedb/disc[3]",
		},
		artist: cds[0].Artist,
	}
}

func xmlBytes(t *testing.T, doc *xmltree.Document) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := doc.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// input parses doc i as the same-named source both the daemon and the
// offline reference chain ingest.
func (f *fixture) input(t *testing.T, i int) core.SourceInput {
	t.Helper()
	return docInput(t, fmt.Sprintf("src-%d", i), f.docs[i])
}

// docInput parses raw XML as a named source.
func docInput(t *testing.T, name string, raw []byte) core.SourceInput {
	t.Helper()
	doc, err := xmltree.Parse(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return core.DocSource{Name: name, Doc: doc}
}

// resolveSpecs maps SOURCE:path removal specs onto res's live IDs —
// the offline twin of the daemon's apply-time resolution.
func resolveSpecs(t *testing.T, res *core.Result, specs []string) []int32 {
	t.Helper()
	ms, ok := res.Store.(od.MutableStore)
	if !ok {
		t.Fatalf("store %T is not mutable", res.Store)
	}
	var out []int32
	for _, spec := range specs {
		colon := strings.IndexByte(spec, ':')
		source, err := strconv.Atoi(spec[:colon])
		if err != nil {
			t.Fatalf("bad spec %q", spec)
		}
		path := spec[colon+1:]
		found := int32(-1)
		for id, c := range res.Candidates {
			if c.Source == source && c.Path == path && ms.Alive(int32(id)) {
				if found >= 0 {
					t.Fatalf("spec %q ambiguous", spec)
				}
				found = int32(id)
			}
		}
		if found < 0 {
			t.Fatalf("spec %q matches no live candidate", spec)
		}
		out = append(out, found)
	}
	return out
}

// canonResult canonicalizes everything the bit-identity contract
// covers — live candidates, scored pairs, clusters — independent of ID
// assignment, so results from different store backends compare.
func canonResult(res *core.Result) string {
	removed := map[int32]bool{}
	for _, id := range res.Removed {
		removed[id] = true
	}
	name := func(id int32) string {
		c := res.Candidates[id]
		return fmt.Sprintf("%d#%s", c.Source, c.Path)
	}
	var live []string
	for id := range res.Candidates {
		if !removed[int32(id)] {
			live = append(live, name(int32(id)))
		}
	}
	sort.Strings(live)
	var pairs []string
	for _, p := range res.Pairs {
		a, b := name(p.I), name(p.J)
		if a > b {
			a, b = b, a
		}
		pairs = append(pairs, fmt.Sprintf("%s|%s|%.6f", a, b, p.Score))
	}
	sort.Strings(pairs)
	var clusters []string
	for _, members := range res.Clusters {
		var ms []string
		for _, m := range members {
			ms = append(ms, name(m))
		}
		sort.Strings(ms)
		clusters = append(clusters, strings.Join(ms, ","))
	}
	sort.Strings(clusters)
	return fmt.Sprintf("live=%v\npairs=%v\nclusters=%v\n", live, pairs, clusters)
}

// canonClusters canonicalizes a wire-level clusters response the same
// way canonResult canonicalizes the in-process clusters, so the served
// JSON can be pinned against the Result it was published from.
func canonClusters(resp *api.ClustersResponse) string {
	var clusters []string
	for _, c := range resp.Clusters {
		var ms []string
		for _, m := range c.Members {
			ms = append(ms, fmt.Sprintf("%d#%s", m.Source, m.Path))
		}
		sort.Strings(ms)
		clusters = append(clusters, strings.Join(ms, ","))
	}
	sort.Strings(clusters)
	return fmt.Sprintf("clusters=%v\n", clusters)
}

func canonResultClusters(res *core.Result) string {
	name := func(id int32) string {
		c := res.Candidates[id]
		return fmt.Sprintf("%d#%s", c.Source, c.Path)
	}
	var clusters []string
	for _, members := range res.Clusters {
		var ms []string
		for _, m := range members {
			ms = append(ms, name(m))
		}
		sort.Strings(ms)
		clusters = append(clusters, strings.Join(ms, ","))
	}
	sort.Strings(clusters)
	return fmt.Sprintf("clusters=%v\n", clusters)
}

func distStore(n int) func() od.Store {
	return func() od.Store {
		parts := make([]od.Partition, n)
		for i := range parts {
			parts[i] = odrpc.NewLoopback(od.NewMemStore())
		}
		return od.NewPartitionedStore(parts, 0)
	}
}

// offlineChain runs the one-shot reference: Detect + Update(batch1) +
// Update(batch2, removals) in a single process with no daemon, on the
// given backend.
func offlineChain(t *testing.T, fix *fixture, newStore func() od.Store) *core.Result {
	t.Helper()
	cfg := fix.cfg
	cfg.NewStore = newStore
	cfg.Incremental = true
	det, err := core.NewDetector(fix.mapping, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.DetectInputs("DISC", fix.input(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	res1, err := det.Update(res, core.UpdateBatch{Add: []core.SourceInput{fix.input(t, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := det.Update(res1, core.UpdateBatch{
		Add:    []core.SourceInput{fix.input(t, 2)},
		Remove: resolveSpecs(t, res1, fix.removes),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res2
}

// startService boots a service over a fresh detection of the initial
// corpus, mirroring the daemon's build-at-startup mode.
func startService(t *testing.T, fix *fixture, cfg core.Config, svcCfg api.Config) *api.Service {
	t.Helper()
	det, err := core.NewDetector(fix.mapping, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.DetectInputs("DISC", fix.input(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	svcCfg.Detector, svcCfg.Result = det, res
	svc, err := api.New(svcCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Shutdown(context.Background()) })
	return svc
}

// submitBatch posts doc i (and removal specs) through the HTTP client.
func submitBatch(t *testing.T, cl *client.Client, fix *fixture, i int, removes []string) *api.UpdateResponse {
	t.Helper()
	resp, err := cl.Submit(context.Background(), &api.UpdateRequest{
		Add:    []api.UpdateDoc{{Name: fmt.Sprintf("src-%d", i), XML: string(fix.docs[i])}},
		Remove: removes,
	})
	if err != nil {
		t.Fatalf("submit batch %d: %v", i, err)
	}
	return resp
}

// TestDaemonLifecycle is the end-to-end acceptance gate: on every
// backend, a daemon built cold serves queries, applies two streamed
// update batches (the second with removals), and finishes bit-identical
// to the one-shot Detect+Update chain that never saw a daemon.
func TestDaemonLifecycle(t *testing.T) {
	backends := []struct {
		name     string
		newStore func(t *testing.T) func() od.Store
	}{
		{"mem", func(t *testing.T) func() od.Store { return nil }},
		{"sharded-4", func(t *testing.T) func() od.Store {
			return func() od.Store { return od.NewShardedStore(4) }
		}},
		{"disk", func(t *testing.T) func() od.Store {
			dir := t.TempDir()
			return func() od.Store { return od.NewDiskStore(dir) }
		}},
		{"dist-3", func(t *testing.T) func() od.Store { return distStore(3) }},
	}
	for _, be := range backends {
		t.Run(be.name, func(t *testing.T) {
			fix := newFixture(t)
			cfg := fix.cfg
			cfg.NewStore = be.newStore(t)
			cfg.Incremental = true
			svc := startService(t, fix, cfg, api.Config{})

			ts := httptest.NewServer(svc.Handler())
			defer ts.Close()
			cl := client.New(ts.URL)
			ctx := context.Background()

			h, err := cl.Health(ctx)
			if err != nil || h.Status != "ok" || h.Type != "DISC" || h.Epoch != 0 {
				t.Fatalf("health = %+v, %v", h, err)
			}
			c0, err := cl.Clusters(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := canonClusters(c0), canonResultClusters(svc.Result()); got != want {
				t.Fatalf("served clusters diverge from published result\n got: %s\nwant: %s", got, want)
			}

			r1 := submitBatch(t, cl, fix, 1, nil)
			if r1.Epoch != 1 || r1.Coalesced != 1 {
				t.Fatalf("batch1 ack = %+v", r1)
			}
			r2 := submitBatch(t, cl, fix, 2, fix.removes)
			if r2.Epoch != 2 {
				t.Fatalf("batch2 ack = %+v", r2)
			}

			want := offlineChain(t, fix, be.newStore(t))
			got := svc.Result()
			if canonResult(got) != canonResult(want) {
				t.Errorf("daemon chain diverges from one-shot chain\n got: %s\nwant: %s", canonResult(got), canonResult(want))
			}
			if got.Stats.Compared != want.Stats.Compared || got.Stats.Patched != want.Stats.Patched {
				t.Errorf("daemon compared=%d patched=%d, one-shot compared=%d patched=%d",
					got.Stats.Compared, got.Stats.Patched, want.Stats.Compared, want.Stats.Patched)
			}

			// Re-query after the updates: the served view is the new epoch.
			c2, err := cl.Clusters(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if c2.Epoch != 2 {
				t.Errorf("clusters epoch = %d after two updates", c2.Epoch)
			}
			if gotC, wantC := canonClusters(c2), canonResultClusters(want); gotC != wantC {
				t.Errorf("served clusters diverge from one-shot clusters\n got: %s\nwant: %s", gotC, wantC)
			}

			// Per-candidate endpoint agrees with the result's pairs.
			if len(got.Pairs) == 0 {
				t.Fatal("no pairs detected; fixture is broken")
			}
			p := got.Pairs[0]
			d, err := cl.Duplicates(ctx, p.I)
			if err != nil {
				t.Fatal(err)
			}
			foundPartner := false
			for _, hit := range d.Pairs {
				if hit.Other.ID == p.J && !hit.Possible {
					foundPartner = true
				}
			}
			if !foundPartner {
				t.Errorf("duplicates(%d) = %+v, missing partner %d", p.I, d, p.J)
			}

			// Value-index endpoint answers through the live store.
			sim, err := cl.Similar(ctx, "ARTIST", fix.artist)
			if err != nil {
				t.Fatal(err)
			}
			if len(sim.Matches) == 0 {
				t.Errorf("similar(ARTIST, %q) found nothing", fix.artist)
			}

			m, err := cl.Metrics(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if m.Epoch != 2 || m.Updates.Batches != 2 || m.Updates.Applied != 2 || len(m.Stages) == 0 {
				t.Errorf("metrics = epoch %d updates %+v stages %d", m.Epoch, m.Updates, len(m.Stages))
			}
			if be.name == "dist-3" && m.Routing == nil {
				t.Error("dist daemon metrics carry no routing counters")
			}
		})
	}
}

// flakyPart wraps a federation member and fails every read once
// killed, so the daemon tests can watch replica failover through the
// HTTP surface.
type flakyPart struct {
	od.Partition
	dead atomic.Bool
}

var errKilled = errors.New("injected member failure")

func (p *flakyPart) check() error {
	if p.dead.Load() {
		return errKilled
	}
	return nil
}

func (p *flakyPart) ObjectsWithExact(t od.Tuple) ([]int32, error) {
	if err := p.check(); err != nil {
		return nil, err
	}
	return p.Partition.ObjectsWithExact(t)
}

func (p *flakyPart) SimilarValues(t od.Tuple) ([]od.ValueMatch, error) {
	if err := p.check(); err != nil {
		return nil, err
	}
	return p.Partition.SimilarValues(t)
}

func (p *flakyPart) SimilarValuesBatch(ts []od.Tuple) ([][]od.ValueMatch, error) {
	if err := p.check(); err != nil {
		return nil, err
	}
	return p.Partition.SimilarValuesBatch(ts)
}

func (p *flakyPart) RoutingFilters() ([]od.VariantFilter, error) {
	if err := p.check(); err != nil {
		return nil, err
	}
	return p.Partition.RoutingFilters()
}

func (p *flakyPart) Stats() ([]od.TypeStats, error) {
	if err := p.check(); err != nil {
		return nil, err
	}
	return p.Partition.Stats()
}

func (p *flakyPart) ExportODs(lo, hi int32) ([]*od.OD, error) {
	if err := p.check(); err != nil {
		return nil, err
	}
	return p.Partition.ExportODs(lo, hi)
}

func (p *flakyPart) Info() (od.PartitionInfo, error) {
	if err := p.check(); err != nil {
		return od.PartitionInfo{}, err
	}
	return p.Partition.Info()
}

// TestDaemonReplicaFailover pins the elastic-federation surface of the
// daemon: with one replica per partition, killing every primary leaves
// the daemon answering reads (the fan-outs fail over member by
// member), /healthz reports the down members while staying 200, and
// /metrics carries the per-partition replica counters.
func TestDaemonReplicaFailover(t *testing.T) {
	fix := newFixture(t)
	var primaries []*flakyPart
	cfg := fix.cfg
	cfg.Incremental = true
	var fed *od.PartitionedStore
	cfg.NewStore = func() od.Store {
		primaries = nil
		parts := make([]od.Partition, 3)
		groups := make([][]od.Partition, 3)
		for i := range parts {
			p := &flakyPart{Partition: od.LocalPartition{S: od.NewMemStore()}}
			primaries = append(primaries, p)
			parts[i] = p
			groups[i] = []od.Partition{od.LocalPartition{S: od.NewMemStore()}}
		}
		fed = od.NewPartitionedStore(parts, 0)
		if err := fed.AttachReplicas(groups); err != nil {
			t.Fatal(err)
		}
		return fed
	}
	svc := startService(t, fix, cfg, api.Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	cl := client.New(ts.URL)
	ctx := context.Background()

	healthy, err := cl.Similar(ctx, "ARTIST", fix.artist)
	if err != nil || len(healthy.Matches) == 0 {
		t.Fatalf("healthy similar = %+v, %v", healthy, err)
	}
	h, err := cl.Health(ctx)
	if err != nil || h.ReplicasDown != 0 {
		t.Fatalf("healthy /healthz = %+v, %v", h, err)
	}

	// Kill every primary. Variant routing off so the next fan-out
	// provably reaches (and marks down) each member rather than
	// skipping it by filter.
	fed.SetVariantRouting(false)
	for _, p := range primaries {
		p.dead.Store(true)
	}
	// An uncached value forces a full fan-out: the primaries fail, the
	// replicas answer, and the daemon keeps serving.
	if _, err := cl.Similar(ctx, "ARTIST", "no-such-artist-zzz"); err != nil {
		t.Fatalf("similar during failover: %v", err)
	}
	again, err := cl.Similar(ctx, "ARTIST", fix.artist)
	if err != nil || canonMatches(again) != canonMatches(healthy) {
		t.Fatalf("failover similar = %+v, %v; want the healthy answer", again, err)
	}

	h, err = cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.ReplicasDown != 3 {
		t.Fatalf("degraded /healthz = %+v, want ok with 3 members down", h)
	}
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Replicas) != 3 {
		t.Fatalf("metrics carry %d replica groups, want 3", len(m.Replicas))
	}
	down, errs := 0, 0
	for _, rc := range m.Replicas {
		if rc.Members != 2 {
			t.Fatalf("replica group %+v, want 2 members", rc)
		}
		down += len(rc.Down)
		errs += len(rc.Errors)
	}
	if down != 3 || errs != 3 {
		t.Fatalf("replica counters down=%d errors=%d, want 3 down with errors recorded", down, errs)
	}
}

// canonMatches canonicalizes a /v1/similar response for comparison.
func canonMatches(r *api.SimilarResponse) string {
	var out []string
	for _, m := range r.Matches {
		out = append(out, fmt.Sprintf("%s|%.6f|%d", m.Value, m.Dist, len(m.Objects)))
	}
	sort.Strings(out)
	return strings.Join(out, ";")
}

// TestDaemonDurabilityContract pins the volatile-ack surface: a
// memory-only daemon acks updates with Durable=false and advertises
// DurableAcks=false in metrics, while a daemon with a Persist hook (or
// a persisting pipeline) acks Durable=true — the bit the CLI's
// volatile-ack warning keys on.
func TestDaemonDurabilityContract(t *testing.T) {
	fix := newFixture(t)
	cfg := fix.cfg
	cfg.Incremental = true
	ctx := context.Background()

	svc := startService(t, fix, cfg, api.Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	cl := client.New(ts.URL)
	if r := submitBatch(t, cl, fix, 1, nil); r.Durable || r.Persisted {
		t.Fatalf("volatile daemon acked durable=%v persisted=%v", r.Durable, r.Persisted)
	}
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.DurableAcks {
		t.Fatal("volatile daemon advertises durable acks")
	}

	persists := 0
	svc2 := startService(t, fix, cfg, api.Config{Persist: func(*core.Result) error { persists++; return nil }})
	ts2 := httptest.NewServer(svc2.Handler())
	defer ts2.Close()
	cl2 := client.New(ts2.URL)
	if r := submitBatch(t, cl2, fix, 1, nil); !r.Durable || !r.Persisted {
		t.Fatalf("persisting daemon acked durable=%v persisted=%v", r.Durable, r.Persisted)
	}
	if persists == 0 {
		t.Fatal("persist hook never ran")
	}
	m2, err := cl2.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !m2.DurableAcks {
		t.Fatal("persisting daemon advertises volatile acks")
	}
}

// TestDaemonRestartDisk pins the disk daemon's cold + warm lifecycle:
// a daemon builds and persists through the pipeline, a second daemon
// process adopts the snapshot (serve-without-documents mode), applies
// the next batch, and lands bit-identical to the chain that never
// restarted.
func TestDaemonRestartDisk(t *testing.T) {
	fix := newFixture(t)
	dir := t.TempDir()

	cfg := fix.cfg
	cfg.NewStore = func() od.Store { return od.NewDiskStore(dir) }
	cfg.Incremental = true
	cfg.Snapshot = &core.SnapshotOptions{Dir: dir, Save: true}
	svc := startService(t, fix, cfg, api.Config{PipelinePersists: true})
	ts := httptest.NewServer(svc.Handler())
	cl := client.New(ts.URL)
	r1 := submitBatch(t, cl, fix, 1, nil)
	if !r1.Persisted {
		t.Fatal("disk daemon ack did not report persistence")
	}
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	// "Restart": adopt the snapshot exactly like dogmatixd's
	// serve-without-documents disk mode.
	ds, err := od.OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	adopted, err := core.Adopt("DISC", ds)
	if err != nil {
		t.Fatal(err)
	}
	if st, ok := adopted.StageByName(core.StageAdopt); !ok || st.Items == 0 {
		t.Fatalf("adopt restored no traces (stage %+v, found %v)", st, ok)
	}
	cfg2 := fix.cfg
	cfg2.Incremental = true
	cfg2.Snapshot = &core.SnapshotOptions{Dir: dir, Save: true}
	det2, err := core.NewDetector(fix.mapping, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	svc2, err := api.New(api.Config{Detector: det2, Result: adopted, PipelinePersists: true})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Shutdown(context.Background())
	ts2 := httptest.NewServer(svc2.Handler())
	defer ts2.Close()
	r2 := submitBatch(t, client.New(ts2.URL), fix, 2, fix.removes)
	restarted := svc2.Result()
	if restarted.Stats.TraceSource != "disk" {
		t.Errorf("restarted update TraceSource = %q, want disk", restarted.Stats.TraceSource)
	}
	if r2.Patched == 0 {
		t.Error("restarted update patched nothing; the persisted traces never replayed")
	}

	// The reference chain never saw a daemon or a restart: one process,
	// Detect + Update + Update on its own disk directory.
	dir2 := t.TempDir()
	want := offlineChain(t, fix, func() od.Store { return od.NewDiskStore(dir2) })
	if canonResult(restarted) != canonResult(want) {
		t.Errorf("restarted daemon diverges from one-shot chain\n got: %s\nwant: %s", canonResult(restarted), canonResult(want))
	}
	if restarted.Stats.Compared != want.Stats.Compared || restarted.Stats.Patched != want.Stats.Patched {
		t.Errorf("restarted compared=%d patched=%d, one-shot compared=%d patched=%d",
			restarted.Stats.Compared, restarted.Stats.Patched, want.Stats.Compared, want.Stats.Patched)
	}
}

// TestDaemonRestartDist pins the distributed daemon's lifecycle: a
// cold-built federation persists generation snapshots through
// FederationDir, a restart adopts the last committed generation, and
// the post-restart update matches the never-restarted chain.
func TestDaemonRestartDist(t *testing.T) {
	fix := newFixture(t)
	root := t.TempDir() + "/fed"

	cfg := fix.cfg
	cfg.NewStore = distStore(3)
	cfg.Incremental = true
	det, err := core.NewDetector(fix.mapping, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res0, err := det.DetectInputs("DISC", fix.input(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	fdir, err := api.CreateFederationDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := fdir.Persist(res0); err != nil {
		t.Fatal(err)
	}
	svc, err := api.New(api.Config{Detector: det, Result: res0, Persist: fdir.Persist})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	r1 := submitBatch(t, client.New(ts.URL), fix, 1, nil)
	if !r1.Persisted {
		t.Fatal("dist daemon ack did not report persistence")
	}
	inMem1 := svc.Result()

	// Restart from the committed generation.
	fdir2, fed2, err := api.OpenFederationDir(root)
	if err != nil {
		t.Fatal(err)
	}
	defer fed2.Close()
	adopted, err := core.Adopt("DISC", fed2)
	if err != nil {
		t.Fatal(err)
	}
	if st, ok := adopted.StageByName(core.StageAdopt); !ok || st.Items == 0 {
		t.Fatalf("adopt restored no federation traces (stage %+v, found %v)", st, ok)
	}
	det2, err := core.NewDetector(fix.mapping, cfg) // cfg.NewStore unused by Update
	if err != nil {
		t.Fatal(err)
	}
	svc2, err := api.New(api.Config{Detector: det2, Result: adopted, Persist: fdir2.Persist})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Shutdown(context.Background())
	ts2 := httptest.NewServer(svc2.Handler())
	defer ts2.Close()
	r2 := submitBatch(t, client.New(ts2.URL), fix, 2, fix.removes)
	if !r2.Persisted {
		t.Fatal("post-restart dist ack did not report persistence")
	}
	restarted := svc2.Result()
	if restarted.Stats.TraceSource != "disk" {
		t.Errorf("restarted update TraceSource = %q, want disk", restarted.Stats.TraceSource)
	}

	res2, err := detUpdate(t, fix, det, inMem1)
	if err != nil {
		t.Fatal(err)
	}
	if canonResult(restarted) != canonResult(res2) {
		t.Errorf("restarted dist daemon diverges from in-process chain\n got: %s\nwant: %s", canonResult(restarted), canonResult(res2))
	}

	// The persisted chain is reopenable once more: three generations
	// were committed (initial, batch1, batch2).
	_, fed3, err := api.OpenFederationDir(root)
	if err != nil {
		t.Fatal(err)
	}
	fed3.Close()
}

// detUpdate applies batch2 + removals on det continuing from prev —
// the shared tail of the restart tests' reference chains.
func detUpdate(t *testing.T, fix *fixture, det *core.Detector, prev *core.Result) (*core.Result, error) {
	t.Helper()
	return det.Update(prev, core.UpdateBatch{
		Add:    []core.SourceInput{fix.input(t, 2)},
		Remove: resolveSpecs(t, prev, fix.removes),
	})
}

// TestDaemonReuseIndexStart pins the -reuse-index boot mode: the
// second daemon start over the same corpus warm-starts from the saved
// snapshot instead of rebuilding, then serves updates normally.
func TestDaemonReuseIndexStart(t *testing.T) {
	fix := newFixture(t)
	dir := t.TempDir()
	mk := func() *api.Service {
		cfg := fix.cfg
		cfg.Incremental = true
		cfg.Snapshot = &core.SnapshotOptions{Dir: dir, Reuse: true, Save: true}
		return startService(t, fix, cfg, api.Config{PipelinePersists: true})
	}
	cold := mk()
	if cold.Result().WarmStart {
		t.Fatal("first start warm-started from an empty directory")
	}
	if err := cold.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	warm := mk()
	if !warm.Result().WarmStart {
		t.Fatal("second start rebuilt instead of warm-starting")
	}
	ts := httptest.NewServer(warm.Handler())
	defer ts.Close()
	r1 := submitBatch(t, client.New(ts.URL), fix, 1, nil)
	if r1.Epoch != 1 || !r1.Persisted {
		t.Fatalf("warm-start daemon ack = %+v", r1)
	}
}

// TestDaemonRejections pins the typed error surface: unknown
// candidates are 404s, malformed batches and unresolvable removals are
// 400s that poison nothing, and the daemon keeps serving afterwards.
func TestDaemonRejections(t *testing.T) {
	fix := newFixture(t)
	cfg := fix.cfg
	cfg.Incremental = true
	svc := startService(t, fix, cfg, api.Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	cl := client.New(ts.URL)
	ctx := context.Background()

	if _, err := cl.Duplicates(ctx, 99999); !isCode(err, api.CodeNotFound, 404) {
		t.Errorf("duplicates(99999) err = %v, want 404 not_found", err)
	}
	if _, err := cl.Similar(ctx, "", ""); !isCode(err, api.CodeBadRequest, 400) {
		t.Errorf("similar() err = %v, want 400", err)
	}
	if _, err := cl.Submit(ctx, &api.UpdateRequest{}); !isCode(err, api.CodeBadRequest, 400) {
		t.Errorf("empty submit err = %v, want 400", err)
	}
	if _, err := cl.Submit(ctx, &api.UpdateRequest{Add: []api.UpdateDoc{{Name: "bad", XML: "<unclosed"}}}); !isCode(err, api.CodeBadRequest, 400) {
		t.Errorf("bad XML submit err = %v, want 400", err)
	}
	if _, err := cl.Submit(ctx, &api.UpdateRequest{Remove: []string{"/freedb/disc[99999]"}}); !isCode(err, api.CodeBadRequest, 400) {
		t.Errorf("bogus removal err = %v, want 400", err)
	}

	// None of those poisoned the daemon: a real batch still applies.
	if r := submitBatch(t, cl, fix, 1, nil); r.Epoch != 1 {
		t.Fatalf("post-rejection submit = %+v", r)
	}
	h, err := cl.Health(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("health after rejections = %+v, %v", h, err)
	}
}

func isCode(err error, code string, status int) bool {
	var apiErr *api.Error
	return errors.As(err, &apiErr) && apiErr.Code == code && apiErr.Status == status
}
