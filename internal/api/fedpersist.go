package api

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/od"
)

// FederationDir persists a served federation across updates. A
// federation cannot re-save into the directory its DiskStore members
// already live in (the in-place merge would misalign the compacted
// IDs — od.SavePartitioned rejects it), so the daemon writes each
// persist into a fresh generation directory under one root and commits
// it by atomically rewriting a CURRENT pointer file:
//
//	root/
//	  CURRENT        -> "gen-000003"
//	  gen-000003/    federation snapshot + trace segment
//
// A crash mid-save leaves a partial gen directory that CURRENT never
// pointed at; the next Open serves the last committed generation and
// removes everything else. Generations older than CURRENT are removed
// at Open time only — the serving process still reads its member
// segments from the generation it opened.
type FederationDir struct {
	root string
	gen  int
}

const currentFile = "CURRENT"

func genName(gen int) string { return fmt.Sprintf("gen-%06d", gen) }

// CreateFederationDir prepares an empty root for a freshly built
// federation; the first Persist commits generation 1.
func CreateFederationDir(root string) (*FederationDir, error) {
	if err := os.MkdirAll(root, 0o777); err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(root, currentFile)); err == nil {
		return nil, fmt.Errorf("federation root %s already holds a committed snapshot; open it instead", root)
	}
	return &FederationDir{root: root}, nil
}

// OpenFederationDir reopens the last committed generation as a serving
// federation and sweeps every uncommitted or superseded generation.
func OpenFederationDir(root string) (*FederationDir, *od.PartitionedStore, error) {
	return OpenFederationDirWith(root, od.OpenOptions{})
}

// OpenFederationDirWith is OpenFederationDir with open options (e.g.
// spilling the coordinator OD directory to disk).
func OpenFederationDirWith(root string, opts od.OpenOptions) (*FederationDir, *od.PartitionedStore, error) {
	b, err := os.ReadFile(filepath.Join(root, currentFile))
	if err != nil {
		return nil, nil, fmt.Errorf("open federation root %s: %w", root, err)
	}
	name := strings.TrimSpace(string(b))
	gen, err := strconv.Atoi(strings.TrimPrefix(name, "gen-"))
	if err != nil || !strings.HasPrefix(name, "gen-") || gen < 1 {
		return nil, nil, fmt.Errorf("federation root %s: corrupt CURRENT pointer %q", root, name)
	}
	fed, err := od.OpenPartitionedWith(filepath.Join(root, name), opts)
	if err != nil {
		return nil, nil, err
	}
	entries, _ := os.ReadDir(root)
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "gen-") && e.Name() != name {
			os.RemoveAll(filepath.Join(root, e.Name()))
		}
	}
	return &FederationDir{root: root, gen: gen}, fed, nil
}

// Dir returns the committed generation's directory, or "" before the
// first Persist.
func (f *FederationDir) Dir() string {
	if f.gen == 0 {
		return ""
	}
	return filepath.Join(f.root, genName(f.gen))
}

// Persist writes res's federation and replay traces into the next
// generation and commits it. It is the Config.Persist callback of a
// distributed daemon: only after the CURRENT rename lands is the
// update batch acknowledged.
func (f *FederationDir) Persist(res *core.Result) error {
	fed, ok := res.Store.(*od.PartitionedStore)
	if !ok {
		return fmt.Errorf("federation persist: result serves a %T, not a federation", res.Store)
	}
	next := f.gen + 1
	dir := filepath.Join(f.root, genName(next))
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	if err := od.SavePartitioned(dir, fed, od.SnapshotMeta{}); err != nil {
		return err
	}
	if err := res.SaveTraces(dir); err != nil {
		return err
	}
	if err := f.commit(next); err != nil {
		return err
	}
	f.gen = next
	return nil
}

// CommitFederation persists a federation that exists outside any
// FederationDir — the output of `dogmatix rebalance` — into a fresh
// root as its first committed generation. The root must not already
// hold a committed snapshot.
func CommitFederation(root string, fed *od.PartitionedStore, meta od.SnapshotMeta) (*FederationDir, error) {
	f, err := CreateFederationDir(root)
	if err != nil {
		return nil, err
	}
	dir := filepath.Join(root, genName(1))
	if err := os.RemoveAll(dir); err != nil {
		return nil, err
	}
	if err := od.SavePartitioned(dir, fed, meta); err != nil {
		return nil, err
	}
	if err := f.commit(1); err != nil {
		return nil, err
	}
	f.gen = 1
	return f, nil
}

// commit atomically repoints CURRENT at gen.
func (f *FederationDir) commit(gen int) error {
	tmp := filepath.Join(f.root, currentFile+".tmp")
	tf, err := os.Create(tmp)
	if err != nil {
		return err
	}
	_, werr := tf.WriteString(genName(gen) + "\n")
	if werr == nil {
		werr = tf.Sync()
	}
	if cerr := tf.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	if err := os.Rename(tmp, filepath.Join(f.root, currentFile)); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(f.root); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
