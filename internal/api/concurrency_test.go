package api_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/api"
	"repro/internal/api/client"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/od"
)

// TestDaemonParallelReaders hammers the lock-free read path while a
// writer streams update batches: no reader may ever observe a torn
// view. Every clusters response a reader fetches must canonicalize to
// exactly the clustering the writer published at that epoch, and the
// epochs each reader observes must be monotonic. Run under -race this
// also proves the view swap itself is sound.
func TestDaemonParallelReaders(t *testing.T) {
	fix := newFixture(t)
	cfg := fix.cfg
	cfg.Incremental = true
	svc := startService(t, fix, cfg, api.Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Five single-source batches of four discs each, so readers see six
	// distinct epochs while the writer runs.
	cds := datagen.FreeDB(60, 2031)
	var batches [][]api.UpdateDoc
	for b := 0; b < 5; b++ {
		doc := xmlBytes(t, datagen.FreeDBToXML(cds[40+4*b:44+4*b]))
		batches = append(batches, []api.UpdateDoc{{Name: fmt.Sprintf("batch-%d", b), XML: string(doc)}})
	}

	// The writer records the authoritative canonical clustering per
	// epoch right after each ack; epoch 0 is the boot view.
	wantByEpoch := sync.Map{}
	wantByEpoch.Store(int64(0), canonResultClusters(svc.Result()))

	var done atomic.Bool
	const readers = 8
	type seen struct {
		epoch int64
		canon string
	}
	errs := make(chan error, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := client.New(ts.URL)
			ctx := context.Background()
			last := int64(-1)
			var log []seen
			for !done.Load() {
				resp, err := cl.Clusters(ctx)
				if err != nil {
					errs <- err
					return
				}
				if resp.Epoch < last {
					errs <- fmt.Errorf("epoch went backwards: %d after %d", resp.Epoch, last)
					return
				}
				last = resp.Epoch
				log = append(log, seen{resp.Epoch, canonClusters(resp)})

				// The per-candidate endpoint must also come from one
				// coherent view.
				d, err := cl.Duplicates(ctx, 0)
				if err != nil {
					errs <- err
					return
				}
				if d.Object.ID != 0 || d.Object.Path == "" {
					errs <- fmt.Errorf("torn duplicates response: %+v", d.Object)
					return
				}
			}
			// Verify against the writer's log once it is complete.
			for _, s := range log {
				want, ok := wantByEpoch.Load(s.epoch)
				if !ok {
					errs <- fmt.Errorf("served epoch %d the writer never published", s.epoch)
					return
				}
				if s.canon != want.(string) {
					errs <- fmt.Errorf("torn read at epoch %d:\n got: %s\nwant: %s", s.epoch, s.canon, want)
					return
				}
			}
			errs <- nil
		}()
	}

	cl := client.New(ts.URL)
	for i, docs := range batches {
		resp, err := cl.Submit(context.Background(), &api.UpdateRequest{Add: docs})
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		wantByEpoch.Store(resp.Epoch, canonResultClusters(svc.Result()))
	}
	done.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestDaemonDrainLosesNothing pins the shutdown contract: submissions
// racing a drain either get applied and acknowledged, or get a typed
// retryable rejection — and the final state contains exactly the
// acknowledged ones. An ack is a promise that survives SIGTERM.
func TestDaemonDrainLosesNothing(t *testing.T) {
	fix := newFixture(t)
	cfg := fix.cfg
	cfg.Incremental = true
	svc := startService(t, fix, cfg, api.Config{QueueDepth: 4})
	initial := len(svc.Result().Candidates)

	cds := datagen.FreeDB(80, 2032)
	const writers = 12
	results := make(chan error, writers)
	var acked atomic.Int64
	var start, ready sync.WaitGroup
	start.Add(1)
	for w := 0; w < writers; w++ {
		ready.Add(1)
		go func(w int) {
			doc := xmlBytes(t, datagen.FreeDBToXML(cds[60+w:61+w]))
			in := []core.SourceInput{docInput(t, fmt.Sprintf("drain-%d", w), doc)}
			ready.Done()
			start.Wait()
			resp, err := svc.Submit(context.Background(), in, nil)
			if err == nil {
				if resp == nil || resp.Epoch < 1 {
					results <- fmt.Errorf("writer %d: ack without epoch: %+v", w, resp)
					return
				}
				acked.Add(1)
				results <- nil
				return
			}
			var apiErr *api.Error
			if !errors.As(err, &apiErr) {
				results <- fmt.Errorf("writer %d: untyped rejection %v", w, err)
				return
			}
			if apiErr.Code != api.CodeDraining && apiErr.Code != api.CodeQueueFull {
				results <- fmt.Errorf("writer %d: rejection code %q", w, apiErr.Code)
				return
			}
			results <- nil
		}(w)
	}
	ready.Wait()
	start.Done() // all writers fire at once, racing the drain below
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		if err := <-results; err != nil {
			t.Error(err)
		}
	}

	// Exactly the acknowledged single-disc batches are in the final
	// state — nothing acked was dropped, nothing unacked slipped in.
	final := svc.Result()
	if got, want := len(final.Candidates), initial+int(acked.Load()); got != want {
		t.Errorf("final corpus has %d candidates, %d acked batches promise %d", got, acked.Load(), want)
	}

	// After the drain the daemon answers reads but refuses mutations.
	if _, err := svc.Submit(context.Background(), []core.SourceInput{fix.input(t, 1)}, nil); !isCode(err, api.CodeDraining, 503) {
		t.Errorf("post-drain submit err = %v, want 503 draining", err)
	}
}

// faultyMember wraps a federation member and fails AddAfterFinalize on
// demand — the shape of a member crashing mid-update. It re-exposes the
// wrapped member's BackingStore so snapshots still save while healthy.
type faultyMember struct {
	od.Partition
	down *atomic.Bool
}

func (f *faultyMember) AddAfterFinalize(ods []*od.OD) error {
	if f.down.Load() {
		return errors.New("injected: member unreachable")
	}
	return f.Partition.AddAfterFinalize(ods)
}

func (f *faultyMember) BackingStore() od.Store {
	return f.Partition.(od.BackingStore).BackingStore()
}

// TestDaemonPartitionFailure pins the distributed fault contract: a
// member failing during an update surfaces as a 503 with the typed
// partition code and index, the daemon latches mutations shut, reads
// keep serving the last good epoch, and nothing partial reaches the
// persisted federation snapshot.
func TestDaemonPartitionFailure(t *testing.T) {
	fix := newFixture(t)
	root := filepath.Join(t.TempDir(), "fed")
	var down atomic.Bool
	const faultyIdx = 1

	cfg := fix.cfg
	cfg.Incremental = true
	cfg.NewStore = func() od.Store {
		parts := make([]od.Partition, 3)
		for i := range parts {
			var p od.Partition = od.LocalPartition{S: od.NewMemStore()}
			if i == faultyIdx {
				p = &faultyMember{Partition: p, down: &down}
			}
			parts[i] = p
		}
		return od.NewPartitionedStore(parts, 0)
	}
	det, err := core.NewDetector(fix.mapping, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res0, err := det.DetectInputs("DISC", fix.input(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	fdir, err := api.CreateFederationDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := fdir.Persist(res0); err != nil {
		t.Fatal(err)
	}
	svc, err := api.New(api.Config{Detector: det, Result: res0, Persist: fdir.Persist})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	cl := client.New(ts.URL)
	ctx := context.Background()

	// Healthy update persists generation 2.
	if r := submitBatch(t, cl, fix, 1, nil); !r.Persisted {
		t.Fatal("healthy dist update did not persist")
	}
	good := svc.Result()
	goodCanon := canonResultClusters(good)

	// Member goes down; the next update must fail typed, not partial.
	down.Store(true)
	_, err = cl.Submit(ctx, &api.UpdateRequest{Add: []api.UpdateDoc{{Name: "src-2", XML: string(fix.docs[2])}}})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Status != 503 || apiErr.Code != api.CodePartitionUnavailable {
		t.Fatalf("update on downed member err = %v, want 503 partition_unavailable", err)
	}
	if apiErr.Partition != faultyIdx {
		t.Errorf("error names partition %d, faulty member is %d", apiErr.Partition, faultyIdx)
	}

	// Mutations are latched shut; the failure does not clear itself.
	down.Store(false)
	if _, err := cl.Submit(ctx, &api.UpdateRequest{Add: []api.UpdateDoc{{Name: "retry", XML: string(fix.docs[2])}}}); !isCode(err, api.CodePartitionUnavailable, 503) {
		t.Errorf("post-failure submit err = %v, want latched 503", err)
	}

	// Reads still serve the last good epoch from the immutable view.
	c, err := cl.Clusters(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if c.Epoch != 1 || canonClusters(c) != goodCanon {
		t.Errorf("post-failure reads diverged from the last good view (epoch %d)", c.Epoch)
	}
	h, err := cl.Health(ctx)
	if err != nil || h.Status != "degraded" {
		t.Errorf("health after member failure = %+v, %v, want degraded", h, err)
	}

	// The failed update never persisted: CURRENT still names the
	// healthy generation 2, and it reopens to the pre-failure state.
	cur, err := os.ReadFile(filepath.Join(root, "CURRENT"))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(cur)); got != "gen-000002" {
		t.Fatalf("CURRENT = %q after failed update, want gen-000002", got)
	}
	_, fed, err := api.OpenFederationDir(root)
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	adopted, err := core.Adopt("DISC", fed)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonLive(adopted), canonLive(good); got != want {
		t.Errorf("persisted corpus diverges from the last acknowledged update\n got: %s\nwant: %s", got, want)
	}
	if st, ok := adopted.StageByName(core.StageAdopt); !ok || st.Items == 0 {
		t.Error("persisted generation carries no replay traces from the acknowledged update")
	}
}

// canonLive canonicalizes a result's live candidate set.
func canonLive(res *core.Result) string {
	removed := map[int32]bool{}
	for _, id := range res.Removed {
		removed[id] = true
	}
	var live []string
	for id, c := range res.Candidates {
		if !removed[int32(id)] {
			live = append(live, fmt.Sprintf("%d#%s", c.Source, c.Path))
		}
	}
	sort.Strings(live)
	return strings.Join(live, "\n")
}
