// Package api is the service layer of the dogmatix daemon: a
// long-running Service wraps one adopted (or freshly built) detection
// Result and serves it over HTTP/JSON. Read queries run lock-free
// against an immutable published view of the last Result; mutations
// (update batches POSTed by clients) serialize behind an
// admission-controlled queue that coalesces everything queued into one
// core.Detector.Update call, persists, then publishes the new view and
// acknowledges every coalesced submission at once.
//
// The wire types in this file are shared verbatim by the server
// handlers (http.go) and the thin HTTP client (client subpackage), so
// the two halves cannot drift.
package api

// Error is the typed failure surface of the service: every non-2xx
// response carries one as JSON, and the client subpackage decodes it
// back into the same type. Code distinguishes retryable congestion
// (CodeQueueFull, CodeDraining — RetryAfter says when) from terminal
// states (CodePartitionUnavailable, CodePersistFailed — the daemon
// refuses further mutations until restarted).
type Error struct {
	Status     int    `json:"-"`                     // HTTP status (not serialized; carried by the response line)
	Code       string `json:"code"`                  // machine-readable class, one of the Code* constants
	Message    string `json:"error"`                 // human-readable detail
	RetryAfter int    `json:"retry_after,omitempty"` // seconds; >0 means retry the same request later
	Partition  int    `json:"partition,omitempty"`   // failed member index when Code is CodePartitionUnavailable
}

func (e *Error) Error() string { return e.Message }

const (
	CodeBadRequest           = "bad_request"
	CodeNotFound             = "not_found"
	CodeQueueFull            = "queue_full"
	CodeDraining             = "draining"
	CodePartitionUnavailable = "partition_unavailable"
	CodePersistFailed        = "persist_failed"
	CodeUpdateFailed         = "update_failed"
)

// ObjectRef identifies one candidate object of the served corpus.
type ObjectRef struct {
	ID     int32  `json:"id"`
	Path   string `json:"path"`   // positionally qualified XPath within its document
	Source int    `json:"source"` // index into the sources the corpus was built from
}

// PairHit is one detected (or possible) duplicate pair seen from one
// of its endpoints.
type PairHit struct {
	Other    ObjectRef `json:"other"`
	Score    float64   `json:"score"`
	Possible bool      `json:"possible,omitempty"` // class C2: θpossible < sim <= θcand
}

// DuplicatesResponse answers GET /v1/duplicates/{id}.
type DuplicatesResponse struct {
	Object  ObjectRef `json:"object"`
	Live    bool      `json:"live"`    // false once an update removed the object
	Cluster int       `json:"cluster"` // index into /v1/clusters, -1 when the object joined none
	Pairs   []PairHit `json:"pairs"`   // detected first, then possible; each sorted by partner ID
}

// ClusterInfo is one duplicate cluster.
type ClusterInfo struct {
	OID     int         `json:"oid"`
	Members []ObjectRef `json:"members"`
}

// ClustersResponse answers GET /v1/clusters.
type ClustersResponse struct {
	Type     string        `json:"type"`
	Epoch    int64         `json:"epoch"` // update epoch the view was published at (0 = initial)
	Live     int           `json:"live"`  // candidates minus removed
	Pairs    int           `json:"pairs"`
	Clusters []ClusterInfo `json:"clusters"`
}

// SimilarMatch is one similar indexed value.
type SimilarMatch struct {
	Value   string      `json:"value"`
	Dist    float64     `json:"dist"` // normalized edit distance to the query
	Objects []ObjectRef `json:"objects"`
}

// SimilarResponse answers GET /v1/similar?type=&value=.
type SimilarResponse struct {
	Type    string         `json:"type"`
	Value   string         `json:"value"`
	Matches []SimilarMatch `json:"matches"`
}

// UpdateDoc is one XML document added by an update batch.
type UpdateDoc struct {
	Name string `json:"name,omitempty"` // source name; defaults to a positional one
	XML  string `json:"xml"`
}

// UpdateRequest is the body of POST /v1/updates. Remove entries follow
// the CLI's -remove syntax: an object path, optionally qualified as
// "SOURCE:path" when the same path recurs across sources. Removals
// resolve against the corpus as of the batch's apply time; a removal
// cannot name an object added by a batch coalesced into the same
// Update call.
type UpdateRequest struct {
	Add    []UpdateDoc `json:"add,omitempty"`
	Remove []string    `json:"remove,omitempty"`
}

// UpdateResponse acknowledges an applied (and, when the daemon
// persists, durable) update batch. Several queued batches may coalesce
// into one Detector.Update run; they all receive the same response.
type UpdateResponse struct {
	Epoch       int64  `json:"epoch"`     // update epoch after this batch applied
	Coalesced   int    `json:"coalesced"` // submissions folded into the same Update call (>= 1)
	Candidates  int    `json:"candidates"`
	Live        int    `json:"live"`
	Pairs       int    `json:"pairs"`
	Clusters    int    `json:"clusters"`
	Compared    int64  `json:"compared"`
	Patched     int64  `json:"patched"` // pairs replayed from traces instead of compared
	TraceSource string `json:"trace_source,omitempty"`
	Persisted   bool   `json:"persisted"` // the batch reached disk before this ack
	// Durable is the client-facing durability contract: true only when
	// this ack survives a daemon restart (the batch was persisted before
	// acknowledging). A mem/sharded daemon applies updates correctly but
	// holds them only in memory — its acks are volatile, and clients that
	// need durability must check this bit, not just the 200.
	Durable bool `json:"durable"`
}

// Health answers GET /healthz.
type Health struct {
	// Status is "ok", "draining" (shutdown in progress, mutations
	// rejected) or "degraded" (a failed update poisoned mutations;
	// reads still serve the last good view).
	Status string `json:"status"`
	Type   string `json:"type"`
	Epoch  int64  `json:"epoch"`
	// ReplicasDown counts federation group members currently marked down
	// (federations only). Reads keep serving from the surviving members;
	// writes are rejected fail-stop while it is non-zero, so a non-zero
	// count is the operator's signal to rotate the member out.
	ReplicasDown int `json:"replicas_down,omitempty"`
}

// StageMetric is one pipeline stage of the last run.
type StageMetric struct {
	Name      string  `json:"name"`
	Items     int     `json:"items"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// RunStats summarizes the last detection/update run (core.Stats).
type RunStats struct {
	Candidates    int     `json:"candidates"`
	Pruned        int     `json:"pruned"`
	Compared      int64   `json:"compared"`
	Patched       int64   `json:"patched"`
	PairsDetected int     `json:"pairs_detected"`
	TraceSource   string  `json:"trace_source,omitempty"`
	ElapsedMS     float64 `json:"elapsed_ms"`
}

// CacheCounters mirrors od.CacheStats.
type CacheCounters struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// RoutingCounters mirrors od.RoutingStats (federations only).
type RoutingCounters struct {
	SimFanouts    uint64 `json:"sim_fanouts"`
	MemberQueries uint64 `json:"member_queries"`
	MemberSkips   uint64 `json:"member_skips"`
	ExactSkips    uint64 `json:"exact_skips"`
}

// WireCounters mirrors od.WireStats (remote federation members only).
type WireCounters struct {
	RoundTrips uint64 `json:"round_trips"`
	FramesOut  uint64 `json:"frames_out"`
	FramesIn   uint64 `json:"frames_in"`
	BytesOut   uint64 `json:"bytes_out"`
	BytesIn    uint64 `json:"bytes_in"`
}

// ReplicaCounters reports one partition group's read availability
// (od.MemberHealth; federations only).
type ReplicaCounters struct {
	Partition int      `json:"partition"`
	Members   int      `json:"members"` // primary + replicas
	Down      []int    `json:"down,omitempty"`
	Errors    []string `json:"errors,omitempty"`
}

// QueryCounters counts served read queries per endpoint.
type QueryCounters struct {
	Duplicates uint64 `json:"duplicates"`
	Clusters   uint64 `json:"clusters"`
	Similar    uint64 `json:"similar"`
}

// UpdateCounters counts the mutation queue's traffic.
type UpdateCounters struct {
	Accepted  uint64 `json:"accepted"`  // submissions admitted to the queue
	Applied   uint64 `json:"applied"`   // submissions acknowledged after an Update run
	Rejected  uint64 `json:"rejected"`  // typed rejections (queue full, draining, failed, bad request)
	Batches   uint64 `json:"batches"`   // Detector.Update calls issued
	Coalesced uint64 `json:"coalesced"` // submissions that rode along in another submission's run
}

// Metrics answers GET /metrics: last-run stage stats, corpus shape,
// query/update counters, and the store's cache/routing/wire counters.
type Metrics struct {
	Type       string                   `json:"type"`
	Status     string                   `json:"status"`
	Epoch      int64                    `json:"epoch"`
	UptimeSec  float64                  `json:"uptime_sec"`
	Candidates int                      `json:"candidates"`
	Live       int                      `json:"live"`
	Pairs      int                      `json:"pairs"`
	Possible   int                      `json:"possible"`
	Clusters   int                      `json:"clusters"`
	LastRun    RunStats                 `json:"last_run"`
	Stages     []StageMetric            `json:"stages"`
	Queries    QueryCounters            `json:"queries"`
	Updates    UpdateCounters           `json:"updates"`
	Cache      map[string]CacheCounters `json:"cache,omitempty"`
	Routing    *RoutingCounters         `json:"routing,omitempty"`
	Wire       map[string]WireCounters  `json:"wire,omitempty"`
	// DurableAcks reports whether this daemon's update acks survive a
	// restart (it persists before acknowledging). False on mem/sharded
	// daemons — their acks are volatile.
	DurableAcks bool `json:"durable_acks"`
	// Replicas reports per-partition-group read availability
	// (federations only).
	Replicas []ReplicaCounters `json:"replicas,omitempty"`
}
