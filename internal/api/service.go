package api

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/od"
	"repro/internal/xsd"
)

// Config assembles a Service around one adopted or freshly built
// detection result.
type Config struct {
	// Detector runs the coalesced Update calls. It must carry the same
	// mapping/thresholds the Result was produced with, and
	// Config.Incremental when the daemon should keep replay traces.
	Detector *core.Detector
	// Result is the state served at startup: a fresh DetectInputs run,
	// or core.Adopt over a reopened snapshot.
	Result *core.Result
	// Schema, when non-nil, is attached to every document POSTed to
	// /v1/updates (mirrors the CLI's -xsd).
	Schema *xsd.Schema
	// Persist, when non-nil, runs after each successful Update and
	// before the batch is acknowledged — the federation path
	// (od.SavePartitioned + Result.SaveTraces) that core's snapshot
	// stage cannot own. A Persist error acknowledges nothing: the
	// submissions receive CodePersistFailed and the service stops
	// accepting mutations (in-memory and on-disk state have diverged).
	Persist func(*core.Result) error
	// PipelinePersists declares that the Detector's own snapshot stage
	// persists each update (Config.Snapshot.Save on a disk store), so
	// acks may report Persisted without a Persist callback.
	PipelinePersists bool
	// QueueDepth bounds the admission queue: submissions beyond it are
	// rejected with CodeQueueFull instead of buffering unboundedly.
	// Defaults to 16.
	QueueDepth int
}

type submission struct {
	add    []core.SourceInput
	remove []string
	done   chan applyOutcome
}

type applyOutcome struct {
	resp *UpdateResponse
	err  *Error
}

// view is one immutable published state: the Result plus everything
// the read endpoints need precomputed, so queries never touch the
// (mutable, shared) store and never take a lock.
type view struct {
	epoch   int64
	res     *core.Result
	live    int
	removed map[int32]bool
	pairsOf map[int32][]PairHit
	cluster []int // candidate ID -> cluster index, -1 when none
}

// Service serves one detection result over HTTP and funnels update
// batches through a single applier goroutine. Reads load the current
// view from an atomic pointer — Update builds a fresh Result (with its
// own Candidates slice) and never mutates a published one, so readers
// are torn-write-free by construction. The store itself IS shared and
// mutated in place by Update; the endpoints that query it
// (/v1/similar, /metrics cache counters) take storeMu.RLock against
// the applier's write lock.
type Service struct {
	cfg   Config
	start time.Time

	view atomic.Pointer[view]

	storeMu sync.RWMutex // store reads (similar/metrics) vs Update mutations

	mu       sync.Mutex // admission gate: draining/failed + queue send
	draining bool
	failed   *Error

	queue chan *submission
	stop  chan struct{}
	done  chan struct{}

	epoch atomic.Int64

	qDuplicates atomic.Uint64
	qClusters   atomic.Uint64
	qSimilar    atomic.Uint64

	updAccepted  atomic.Uint64
	updApplied   atomic.Uint64
	updRejected  atomic.Uint64
	updBatches   atomic.Uint64
	updCoalesced atomic.Uint64
}

// New builds the service and starts its applier goroutine. Call
// Shutdown to drain and stop it.
func New(cfg Config) (*Service, error) {
	if cfg.Detector == nil {
		return nil, fmt.Errorf("api: Config.Detector is required")
	}
	if cfg.Result == nil {
		return nil, fmt.Errorf("api: Config.Result is required")
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 16
	}
	if cfg.QueueDepth < 1 {
		return nil, fmt.Errorf("api: QueueDepth %d < 1", cfg.QueueDepth)
	}
	s := &Service{
		cfg:   cfg,
		start: time.Now(),
		queue: make(chan *submission, cfg.QueueDepth),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	s.view.Store(buildView(0, cfg.Result))
	go s.applier()
	return s, nil
}

// Result returns the currently published result (the last applied
// update, or the initial one).
func (s *Service) Result() *core.Result { return s.view.Load().res }

// Epoch returns the number of Update runs published so far.
func (s *Service) Epoch() int64 { return s.epoch.Load() }

// status reports the health string under the admission gate's rules.
func (s *Service) status() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.draining:
		return "draining"
	case s.failed != nil:
		return "degraded"
	default:
		return "ok"
	}
}

// Submit queues one update batch and blocks until it is applied (and
// persisted, when the daemon persists) or rejected. A ctx cancellation
// abandons the wait but NOT the batch: once admitted, the batch still
// applies and survives a graceful drain.
func (s *Service) Submit(ctx context.Context, add []core.SourceInput, remove []string) (*UpdateResponse, error) {
	if len(add) == 0 && len(remove) == 0 {
		return nil, &Error{Status: 400, Code: CodeBadRequest, Message: "empty update batch: nothing to add or remove"}
	}
	sub := &submission{add: add, remove: remove, done: make(chan applyOutcome, 1)}
	s.mu.Lock()
	if s.failed != nil {
		err := s.failed
		s.mu.Unlock()
		s.updRejected.Add(1)
		return nil, err
	}
	if s.draining {
		s.mu.Unlock()
		s.updRejected.Add(1)
		return nil, &Error{Status: 503, Code: CodeDraining, Message: "service is draining; retry against the restarted daemon", RetryAfter: 1}
	}
	select {
	case s.queue <- sub:
		s.updAccepted.Add(1)
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		s.updRejected.Add(1)
		return nil, &Error{Status: 503, Code: CodeQueueFull, Message: fmt.Sprintf("update queue full (%d pending)", cap(s.queue)), RetryAfter: 1}
	}
	select {
	case out := <-sub.done:
		if out.err != nil {
			return nil, out.err
		}
		return out.resp, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Shutdown drains gracefully: new submissions are rejected with
// CodeDraining, every batch admitted before the gate closed is applied
// (and persisted) so its waiting client gets a real ack, then the
// applier exits. Safe to call more than once.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.stop)
	}
	s.mu.Unlock()
	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// applier is the single mutation goroutine: it serializes every
// Detector.Update, coalescing whatever queued while the previous run
// was busy into the next one.
func (s *Service) applier() {
	defer close(s.done)
	for {
		var first *submission
		select {
		case first = <-s.queue:
		case <-s.stop:
			// Drain: everything in the queue was admitted before the
			// gate closed and has a client blocked on its ack.
			if subs := s.drainQueue(nil); len(subs) > 0 {
				s.apply(subs)
			}
			return
		}
		s.apply(s.drainQueue([]*submission{first}))
	}
}

// drainQueue appends every immediately available submission to subs.
func (s *Service) drainQueue(subs []*submission) []*submission {
	for {
		select {
		case sub := <-s.queue:
			subs = append(subs, sub)
		default:
			return subs
		}
	}
}

// apply folds subs into one UpdateBatch, runs Update under the store
// write lock, persists, publishes the new view and acknowledges every
// submission. A submission whose removals do not resolve is rejected
// individually without failing the others; a failed Update or Persist
// poisons all further mutations (queries keep serving the last view).
func (s *Service) apply(subs []*submission) {
	v := s.view.Load()
	var batch core.UpdateBatch
	scheduled := make(map[int32]bool)
	applied := subs[:0]
	for _, sub := range subs {
		ids, err := resolveRemovals(v.res, sub.remove)
		if err != nil {
			s.updRejected.Add(1)
			sub.done <- applyOutcome{err: &Error{Status: 400, Code: CodeBadRequest, Message: err.Error()}}
			continue
		}
		for _, id := range ids {
			// Two coalesced submissions may remove the same object;
			// dedupe so Update does not reject the merged batch, and
			// both acks honestly report the removal applied.
			if !scheduled[id] {
				scheduled[id] = true
				batch.Remove = append(batch.Remove, id)
			}
		}
		batch.Add = append(batch.Add, sub.add...)
		applied = append(applied, sub)
	}
	if len(applied) == 0 {
		return
	}

	s.storeMu.Lock()
	res, err := s.cfg.Detector.Update(v.res, batch)
	s.storeMu.Unlock()
	if err != nil {
		serr := updateError(err)
		s.failMutations(serr)
		for _, sub := range applied {
			s.updRejected.Add(1)
			sub.done <- applyOutcome{err: serr}
		}
		return
	}

	persisted := s.cfg.PipelinePersists
	if s.cfg.Persist != nil {
		if err := s.cfg.Persist(res); err != nil {
			// The in-memory state advanced but disk did not: publish
			// the view (reads stay consistent with the store) and
			// refuse further mutations.
			serr := &Error{Status: 500, Code: CodePersistFailed, Message: fmt.Sprintf("update applied but not persisted: %v", err)}
			s.publish(res)
			s.failMutations(serr)
			for _, sub := range applied {
				s.updRejected.Add(1)
				sub.done <- applyOutcome{err: serr}
			}
			return
		}
		persisted = true
	}

	epoch := s.publish(res)
	nv := s.view.Load()
	resp := &UpdateResponse{
		Epoch:       epoch,
		Coalesced:   len(applied),
		Candidates:  len(res.Candidates),
		Live:        nv.live,
		Pairs:       len(res.Pairs),
		Clusters:    len(res.Clusters),
		Compared:    res.Stats.Compared,
		Patched:     res.Stats.Patched,
		TraceSource: res.Stats.TraceSource,
		Persisted:   persisted,
		Durable:     persisted,
	}
	s.updBatches.Add(1)
	s.updApplied.Add(uint64(len(applied)))
	if len(applied) > 1 {
		s.updCoalesced.Add(uint64(len(applied) - 1))
	}
	for _, sub := range applied {
		sub.done <- applyOutcome{resp: resp}
	}
}

// publish swaps in a fresh view over res and returns its epoch.
func (s *Service) publish(res *core.Result) int64 {
	epoch := s.epoch.Add(1)
	s.view.Store(buildView(epoch, res))
	return epoch
}

// failMutations latches the mutation path closed. Reads keep serving.
func (s *Service) failMutations(err *Error) {
	s.mu.Lock()
	if s.failed == nil {
		s.failed = err
	}
	s.mu.Unlock()
}

// updateError classifies a Detector.Update failure. A partition panic
// recovered by the pipeline surfaces as a wrapped
// *od.PartitionUnavailableError — the typed 503 the distributed
// daemon's clients retry against another coordinator.
func updateError(err error) *Error {
	var pe *od.PartitionUnavailableError
	if errors.As(err, &pe) {
		return &Error{
			Status:     503,
			Code:       CodePartitionUnavailable,
			Message:    err.Error(),
			Partition:  pe.Partition,
			RetryAfter: 5,
		}
	}
	return &Error{Status: 500, Code: CodeUpdateFailed, Message: err.Error()}
}

// buildView precomputes everything the read endpoints answer from, so
// they never chase the store. Update returns a Result with freshly
// copied Candidates/Pairs/Clusters slices, so holding res here keeps
// old views valid forever.
func buildView(epoch int64, res *core.Result) *view {
	v := &view{
		epoch:   epoch,
		res:     res,
		removed: make(map[int32]bool, len(res.Removed)),
		pairsOf: make(map[int32][]PairHit),
		cluster: make([]int, len(res.Candidates)),
	}
	for _, id := range res.Removed {
		v.removed[id] = true
	}
	v.live = len(res.Candidates) - len(v.removed)
	for i := range v.cluster {
		v.cluster[i] = -1
	}
	for ci, members := range res.Clusters {
		for _, id := range members {
			v.cluster[id] = ci
		}
	}
	add := func(p core.Pair, possible bool) {
		v.pairsOf[p.I] = append(v.pairsOf[p.I], PairHit{Other: v.ref(p.J), Score: p.Score, Possible: possible})
		v.pairsOf[p.J] = append(v.pairsOf[p.J], PairHit{Other: v.ref(p.I), Score: p.Score, Possible: possible})
	}
	for _, p := range res.Pairs {
		add(p, false)
	}
	for _, p := range res.PossiblePairs {
		add(p, true)
	}
	for _, hits := range v.pairsOf {
		sort.SliceStable(hits, func(i, j int) bool {
			if hits[i].Possible != hits[j].Possible {
				return !hits[i].Possible
			}
			return hits[i].Other.ID < hits[j].Other.ID
		})
	}
	return v
}

func (v *view) ref(id int32) ObjectRef {
	c := v.res.Candidates[id]
	return ObjectRef{ID: id, Path: c.Path, Source: c.Source}
}

// resolveRemovals maps removal specs ("path" or "SOURCE:path", the
// CLI's -remove syntax) onto live candidate IDs of res. An unqualified
// path that matches candidates in several sources is ambiguous.
func resolveRemovals(res *core.Result, specs []string) ([]int32, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	store, ok := res.Store.(od.MutableStore)
	if !ok {
		return nil, fmt.Errorf("store backend %T does not support removals", res.Store)
	}
	var out []int32
	for _, spec := range specs {
		path, source := spec, -1
		if colon := strings.IndexByte(spec, ':'); colon > 0 {
			if n, err := strconv.Atoi(spec[:colon]); err == nil {
				source, path = n, spec[colon+1:]
			}
		}
		var matches []int32
		for id, c := range res.Candidates {
			if c.Path == path && (source < 0 || c.Source == source) && store.Alive(int32(id)) {
				matches = append(matches, int32(id))
			}
		}
		switch len(matches) {
		case 0:
			return nil, fmt.Errorf("remove %s: no live candidate has this object path", spec)
		case 1:
			out = append(out, matches[0])
		default:
			var srcs []string
			for _, id := range matches {
				srcs = append(srcs, strconv.Itoa(res.Candidates[id].Source))
			}
			return nil, fmt.Errorf("remove %s: ambiguous, candidates exist in sources %s — qualify as SOURCE:%s",
				spec, strings.Join(srcs, ", "), path)
		}
	}
	return out, nil
}
