package evalmetrics

import (
	"math"
	"testing"
)

func TestPairCanonical(t *testing.T) {
	if NewPair(3, 1) != (Pair{1, 3}) {
		t.Error("pair not canonicalized")
	}
	s := PairSet{}
	s.Add(5, 2)
	if !s.Has(2, 5) || !s.Has(5, 2) {
		t.Error("unordered membership broken")
	}
	if s.Len() != 1 {
		t.Errorf("len = %d", s.Len())
	}
}

func TestPairsPR(t *testing.T) {
	gold := NewPairSet([2]int32{0, 1}, [2]int32{2, 3}, [2]int32{4, 5})
	detected := NewPairSet([2]int32{0, 1}, [2]int32{2, 3}, [2]int32{6, 7})
	pr := PairsPR(detected, gold)
	if math.Abs(pr.Recall-2.0/3) > 1e-12 {
		t.Errorf("recall = %v", pr.Recall)
	}
	if math.Abs(pr.Precision-2.0/3) > 1e-12 {
		t.Errorf("precision = %v", pr.Precision)
	}
	if pr.TruePos != 2 || pr.FalsePos != 1 || pr.FalseNeg != 1 {
		t.Errorf("counts = %+v", pr)
	}
	if f1 := pr.F1(); math.Abs(f1-2.0/3) > 1e-12 {
		t.Errorf("f1 = %v", f1)
	}
}

func TestPairsPREdgeCases(t *testing.T) {
	empty := PairSet{}
	some := NewPairSet([2]int32{0, 1})
	pr := PairsPR(empty, empty)
	if pr.Recall != 1 || pr.Precision != 1 {
		t.Errorf("empty/empty = %+v", pr)
	}
	pr = PairsPR(empty, some)
	if pr.Recall != 0 || pr.Precision != 1 {
		t.Errorf("empty detected = %+v", pr)
	}
	pr = PairsPR(some, empty)
	if pr.Recall != 1 || pr.Precision != 0 {
		t.Errorf("empty gold = %+v", pr)
	}
	if pr.F1() != 0 {
		t.Errorf("f1 with zero precision = %v", pr.F1())
	}
}

func TestClustersToPairs(t *testing.T) {
	s := ClustersToPairs([][]int32{{0, 1, 2}, {5, 6}})
	if s.Len() != 4 {
		t.Fatalf("pairs = %v", s.Sorted())
	}
	for _, want := range [][2]int32{{0, 1}, {0, 2}, {1, 2}, {5, 6}} {
		if !s.Has(want[0], want[1]) {
			t.Errorf("missing pair %v", want)
		}
	}
}

func TestSortedDeterministic(t *testing.T) {
	s := NewPairSet([2]int32{4, 5}, [2]int32{0, 3}, [2]int32{0, 1})
	got := s.Sorted()
	want := []Pair{{0, 1}, {0, 3}, {4, 5}}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sorted[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFilterPR(t *testing.T) {
	// 10 objects; 0-3 have duplicates, 4-9 do not.
	hasDup := func(id int32) bool { return id < 4 }
	// filter pruned 4,5,6 (correct) and 0 (wrong)
	pr := FilterPR([]int32{4, 5, 6, 0}, hasDup, 10)
	if math.Abs(pr.Recall-3.0/6) > 1e-12 {
		t.Errorf("recall = %v, want 0.5", pr.Recall)
	}
	if math.Abs(pr.Precision-3.0/4) > 1e-12 {
		t.Errorf("precision = %v, want 0.75", pr.Precision)
	}
}

func TestFilterPREdgeCases(t *testing.T) {
	allDup := func(int32) bool { return true }
	pr := FilterPR(nil, allDup, 4)
	if pr.Recall != 1 || pr.Precision != 1 {
		t.Errorf("no prunes, no non-dups = %+v", pr)
	}
	noDup := func(int32) bool { return false }
	pr = FilterPR(nil, noDup, 4)
	if pr.Recall != 0 || pr.Precision != 1 {
		t.Errorf("no prunes, all non-dup = %+v", pr)
	}
}

func TestPRString(t *testing.T) {
	pr := PR{Recall: 0.5, Precision: 0.75}
	if got := pr.String(); got != "recall=50.0% precision=75.0%" {
		t.Errorf("String = %q", got)
	}
}
