// Package evalmetrics provides the effectiveness measures of Section 6:
// recall and precision of detected duplicate pairs against a gold
// standard, and the filter-specific recall/precision definitions of the
// Fig. 8 experiment.
package evalmetrics

import (
	"fmt"
	"sort"
)

// Pair is an unordered object pair; construct with NewPair so that
// A < B canonically.
type Pair struct{ A, B int32 }

// NewPair returns the canonical form of the pair (a, b).
func NewPair(a, b int32) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{a, b}
}

// PairSet is a set of unordered pairs.
type PairSet map[Pair]bool

// NewPairSet builds a set from pairs.
func NewPairSet(pairs ...[2]int32) PairSet {
	s := PairSet{}
	for _, p := range pairs {
		s.Add(p[0], p[1])
	}
	return s
}

// Add inserts the pair (a, b).
func (s PairSet) Add(a, b int32) { s[NewPair(a, b)] = true }

// Has reports membership of (a, b).
func (s PairSet) Has(a, b int32) bool { return s[NewPair(a, b)] }

// Len returns the number of pairs.
func (s PairSet) Len() int { return len(s) }

// Sorted returns the pairs in (A, B) order, for deterministic output.
func (s PairSet) Sorted() []Pair {
	out := make([]Pair, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// PR holds a recall/precision measurement.
type PR struct {
	Recall    float64
	Precision float64
	TruePos   int
	FalsePos  int
	FalseNeg  int
}

// F1 returns the harmonic mean of recall and precision (0 if both are 0).
func (pr PR) F1() float64 {
	if pr.Recall+pr.Precision == 0 {
		return 0
	}
	return 2 * pr.Recall * pr.Precision / (pr.Recall + pr.Precision)
}

// String renders the measurement like the paper's axes, in percent.
func (pr PR) String() string {
	return fmt.Sprintf("recall=%.1f%% precision=%.1f%%", pr.Recall*100, pr.Precision*100)
}

// PairsPR evaluates detected duplicate pairs against the gold standard.
// Recall = |detected ∩ gold| / |gold|; precision = |detected ∩ gold| /
// |detected|. Empty denominators yield 1 for precision (nothing falsely
// reported) and 1 for recall only when the gold set is empty too.
func PairsPR(detected, gold PairSet) PR {
	tp := 0
	for p := range detected {
		if gold[p] {
			tp++
		}
	}
	pr := PR{
		TruePos:  tp,
		FalsePos: len(detected) - tp,
		FalseNeg: len(gold) - tp,
	}
	if len(gold) == 0 {
		pr.Recall = 1
	} else {
		pr.Recall = float64(tp) / float64(len(gold))
	}
	if len(detected) == 0 {
		pr.Precision = 1
	} else {
		pr.Precision = float64(tp) / float64(len(detected))
	}
	return pr
}

// ClustersToPairs expands duplicate clusters into all implied pairs
// (transitivity makes every in-cluster pair a duplicate claim).
func ClustersToPairs(clusters [][]int32) PairSet {
	s := PairSet{}
	for _, members := range clusters {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				s.Add(members[i], members[j])
			}
		}
	}
	return s
}

// FilterPR evaluates the object filter per Fig. 8: recall is the number of
// correctly pruned candidates (pruned objects that indeed have no
// duplicate) divided by the number of non-duplicate candidates; precision
// is correctly pruned divided by all pruned.
func FilterPR(pruned []int32, hasDuplicate func(int32) bool, total int) PR {
	correctly := 0
	for _, id := range pruned {
		if !hasDuplicate(id) {
			correctly++
		}
	}
	nonDup := 0
	for i := 0; i < total; i++ {
		if !hasDuplicate(int32(i)) {
			nonDup++
		}
	}
	pr := PR{
		TruePos:  correctly,
		FalsePos: len(pruned) - correctly,
		FalseNeg: nonDup - correctly,
	}
	if nonDup == 0 {
		pr.Recall = 1
	} else {
		pr.Recall = float64(correctly) / float64(nonDup)
	}
	if len(pruned) == 0 {
		pr.Precision = 1
	} else {
		pr.Precision = float64(correctly) / float64(len(pruned))
	}
	return pr
}
